"""AccessExecuteEngine: decoupling, forwarding, ports, streams."""

import pytest

from repro.sim import CLASS_OUT, CLASS_XW, CacheBuffer, DRAM, DRAMConfig, SimStats
from repro.sim.engine import AccessExecuteEngine


def make_engine(stats, capacity=64, mshr=16, lsq=8, forwarding=True, latency=100):
    dram = DRAM(DRAMConfig(latency_cycles=latency), stats)
    buf = CacheBuffer(capacity, 64, dram, stats, mshr_entries=mshr)
    eng = AccessExecuteEngine(buf, dram, stats, lsq_depth=lsq, forwarding=forwarding)
    return eng, buf, dram


class TestComputeFlow:
    def test_hits_sustain_one_per_cycle(self, stats):
        eng, buf, _ = make_engine(stats)
        for addr in range(8):
            buf.write(0, addr, CLASS_XW, "XW")
        start = eng.exec_t
        for addr in range(8):
            eng.mac_load(addr, CLASS_XW, "XW")
        for addr in range(8):  # all hits now
            eng.mac_load(addr, CLASS_XW, "XW")
        assert stats.busy_cycles == 16

    def test_miss_latency_overlaps(self, stats):
        """Independent misses pipeline through the MSHRs: 8 misses cost
        far less than 8 x latency."""
        eng, _, _ = make_engine(stats, lsq=32)
        for addr in range(8):
            eng.mac_load(addr, CLASS_XW, "XW")
        assert eng.drain() < 8 * 100

    def test_first_miss_pays_latency(self, stats):
        eng, _, _ = make_engine(stats)
        eng.mac_load(0, CLASS_XW, "XW")
        assert eng.exec_t >= 100

    def test_mac_local_advances_backend_only(self, stats):
        eng, _, _ = make_engine(stats)
        eng.mac_local(5)
        assert eng.exec_t == pytest.approx(5)
        assert eng.issue_t == pytest.approx(0)
        assert stats.busy_cycles == 5

    def test_alu_op_counts_busy(self, stats):
        eng, _, _ = make_engine(stats)
        eng.alu_op(3)
        assert stats.busy_cycles == 3

    def test_wait_until_only_moves_forward(self, stats):
        eng, _, _ = make_engine(stats)
        eng.wait_until(50)
        assert eng.exec_t == 50
        eng.wait_until(10)
        assert eng.exec_t == 50

    def test_load_does_not_count_busy(self, stats):
        eng, _, _ = make_engine(stats)
        eng.load(0, CLASS_XW, "XW")
        assert stats.busy_cycles == 0
        assert eng.exec_t >= 100  # still waits for the data

    def test_lsq_depth_bounds_runahead(self, stats):
        """With a 2-deep LSQ the frontend cannot overlap many misses."""
        eng_shallow, _, _ = make_engine(stats, lsq=2)
        for addr in range(8):
            eng_shallow.mac_load(addr, CLASS_XW, "XW")
        shallow = eng_shallow.drain()

        stats2 = SimStats()
        eng_deep, _, _ = make_engine(stats2, lsq=32)
        for addr in range(8):
            eng_deep.mac_load(addr, CLASS_XW, "XW")
        assert eng_deep.drain() < shallow

    def test_invalid_lsq_depth(self, stats):
        with pytest.raises(ValueError):
            make_engine(stats, lsq=0)


class TestStores:
    def test_store_uses_write_port(self, stats):
        eng, _, _ = make_engine(stats)
        eng.store(1, CLASS_XW, "XW")
        assert eng.write_t == pytest.approx(1)
        assert eng.issue_t == pytest.approx(0)  # load port untouched

    def test_store_forwarding_to_load(self, stats):
        eng, _, _ = make_engine(stats)
        eng.mac_local(10)
        eng.store(1, CLASS_XW, "XW")
        eng.mac_load(1, CLASS_XW, "XW")
        assert stats.lsq_forwards == 1
        assert stats.dram_read_bytes["XW"] == 0

    def test_forwarding_disabled(self, stats):
        eng, _, _ = make_engine(stats, forwarding=False)
        eng.store(1, CLASS_XW, "XW")
        eng.mac_load(1, CLASS_XW, "XW")
        assert stats.lsq_forwards == 0

    def test_forward_window_bounded_by_depth(self, stats):
        eng, buf, _ = make_engine(stats, lsq=2)
        eng.store(1, CLASS_XW, "XW")
        eng.store(2, CLASS_XW, "XW")
        eng.store(3, CLASS_XW, "XW")  # evicts addr 1 from the window
        buf.invalidate(CLASS_XW)  # force a real lookup
        eng.mac_load(1, CLASS_XW, "XW")
        assert stats.lsq_forwards == 0

    def test_write_through_store(self, stats):
        eng, buf, _ = make_engine(stats)
        eng.store(9, CLASS_OUT, "AXW", allocate=False)
        assert not buf.contains(9)
        assert stats.dram_write_bytes["AXW"] == 64

    def test_accumulate_store_no_backend_cost(self, stats):
        eng, _, _ = make_engine(stats)
        eng.accumulate_store(4, "partial")
        assert eng.exec_t == pytest.approx(0)
        assert stats.partials_produced == 1

    def test_rmw_costs_one_alu(self, stats):
        eng, buf, _ = make_engine(stats)
        buf.write(0, 4, CLASS_OUT, "AXW")
        eng.rmw(4, CLASS_OUT, "AXW")
        assert stats.busy_cycles == 1


class TestStream:
    def test_stream_charges_bandwidth(self, stats):
        eng, _, dram = make_engine(stats)
        eng.stream(640, "A")
        assert stats.dram_read_bytes["A"] == 640
        assert dram.busy_until == pytest.approx(10)

    def test_stream_throttles_when_far_behind(self, stats):
        eng, _, _ = make_engine(stats)
        eng.stream(10 * 16 * 1024, "A")  # ten SMQ buffers worth
        assert eng.issue_t > 0

    def test_small_stream_does_not_throttle(self, stats):
        eng, _, _ = make_engine(stats)
        eng.stream(64, "A")
        assert eng.issue_t == pytest.approx(0)

    def test_mac_stream_load_miss_counts(self, stats):
        eng, _, _ = make_engine(stats)
        eng.mac_stream_load(5, CLASS_XW, "XW")
        assert stats.buffer_misses["XW"] == 1
        assert stats.busy_cycles == 1
        assert stats.dram_read_bytes["XW"] == 64

    def test_mac_stream_load_does_not_allocate(self, stats):
        eng, buf, _ = make_engine(stats)
        eng.mac_stream_load(5, CLASS_XW, "XW")
        assert not buf.contains(5)

    def test_mac_stream_load_hits_buffer(self, stats):
        eng, buf, _ = make_engine(stats)
        buf.write(0, 5, CLASS_XW, "XW")
        eng.mac_stream_load(5, CLASS_XW, "XW")
        assert stats.buffer_hits["XW"] == 1
        assert stats.dram_read_bytes["XW"] == 0

    def test_stream_avoids_latency(self, stats):
        """Streamed misses do not pay the 100-cycle demand latency."""
        eng, _, _ = make_engine(stats)
        for addr in range(8):
            eng.mac_stream_load(addr, CLASS_XW, "XW")
        assert eng.drain() < 100


class TestDrain:
    def test_drain_takes_max_of_timelines(self, stats):
        eng, _, _ = make_engine(stats)
        eng.mac_local(10)
        eng.store(1, CLASS_XW, "XW")
        assert eng.drain() >= 10
