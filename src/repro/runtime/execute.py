"""Job execution: turn a :class:`JobSpec` into a :class:`RunResult`.

These are the only functions worker processes run, so they are plain
module-level callables (picklable by reference) and they import the
bench workload layer lazily to keep ``repro.runtime`` importable
without dragging in -- or cyclically re-entering -- ``repro.bench``.
"""

from __future__ import annotations

import logging
import time
from typing import Dict, Optional

from repro.hymm import HyMMAccelerator, HyMMConfig
from repro.hymm.base import AcceleratorBase, RunResult
from repro.obs.tracer import Tracer
from repro.runtime.job import JobSpec
from repro.telemetry import bind_correlation, get_logger, span

_log = get_logger("runtime.execute")


def make_accelerator(
    kind: str,
    config: Optional[HyMMConfig] = None,
    sort_mode: Optional[str] = None,
    seed: int = 0,
) -> "AcceleratorBase":
    """Instantiate an accelerator by its report name.

    ``sort_mode`` selects HyMM's preprocessing ("degree", "none",
    "random"); it is an error for any other accelerator.  ``seed``
    (normally ``JobSpec.seed``) seeds any stochastic preprocessing --
    currently HyMM's ``"random"`` relabelling -- so the permutation is
    pinned by the job fingerprint rather than by a constant buried in
    the accelerator.
    """
    from repro.baselines import (
        CWPAccelerator,
        GCoDAccelerator,
        OPAccelerator,
        RWPAccelerator,
        TiledOPAccelerator,
    )

    if kind == "hymm":
        return HyMMAccelerator(
            config if config is not None else HyMMConfig(),
            sort_mode=sort_mode if sort_mode is not None else "degree",
            sort_seed=seed,
        )
    if sort_mode is not None:
        raise ValueError(f"sort_mode is only supported by 'hymm', not {kind!r}")
    if kind == "rwp":
        return RWPAccelerator(config)
    if kind == "op":
        return OPAccelerator(config)
    if kind == "op-deferred":
        return OPAccelerator(config, merge_mode="deferred")
    if kind == "op-tiled":
        return TiledOPAccelerator(config)
    if kind == "gcod":
        return GCoDAccelerator(config)
    if kind == "cwp":
        return CWPAccelerator(config)
    raise ValueError(f"unknown accelerator kind {kind!r}")


#: Sentinel for "resolve the replay session from the default trace
#: root" -- distinct from ``None``, which means "replay off".
AUTO_REPLAY = object()

#: ``REPRO_TRACE_DIR`` values that turn replay off process-wide.
_REPLAY_OFF = frozenset({"0", "off", "none", "no", "false", "disabled"})


def trace_root() -> Optional[str]:
    """Root of the on-disk phase-trace tree, or ``None`` (replay off).

    Replay is the production path: by default traces live under
    ``<default cache dir>/traces``, next to the result cache, so every
    execution lane -- serial runner, pool workers, the serve front end
    -- records phase traces on a miss and replays them on a hit.
    ``REPRO_TRACE_DIR`` relocates the tree; setting it to ``off`` (or
    ``0``/``none``/``false``) disables record/replay entirely.  Replay
    is bit-identical to live simulation (see :mod:`repro.sim.replay`),
    so the switch only ever changes how fast a result is produced.
    """
    import os

    raw = os.environ.get("REPRO_TRACE_DIR")
    if raw is not None:
        stripped = raw.strip()
        if stripped.lower() in _REPLAY_OFF or not stripped:
            return None
        return stripped
    from repro.runtime.cache import default_cache_dir

    return os.path.join(str(default_cache_dir()), "traces")


def resolve_trace_root(preferred: Optional[str] = None) -> Optional[str]:
    """The trace root to use given a caller preference.

    The ``REPRO_TRACE_DIR`` environment variable always wins (both as a
    relocation and as the ``off`` kill-switch); otherwise ``preferred``
    (e.g. a serve front end colocating traces with its result cache);
    otherwise the process-wide default.
    """
    import os

    if os.environ.get("REPRO_TRACE_DIR") is not None or preferred is None:
        return trace_root()
    return preferred


def job_trace_session(
    spec: JobSpec, root: Optional[str] = None
) -> Optional[object]:
    """A :class:`repro.sim.replay.TraceSession` over ``spec``'s own
    trace directory (``JobSpec.trace_dir``), or ``None`` when replay is
    disabled.  ``root`` overrides the process-wide :func:`trace_root`.
    """
    root = root if root is not None else trace_root()
    if root is None:
        return None
    from repro.runtime.cache import TraceStore
    from repro.sim.replay import TraceSession

    return TraceSession(TraceStore(spec.trace_dir(root)))


def replay_summary(session: Optional[object]) -> Optional[Dict[str, int]]:
    """Replay accounting of one finished session: phases replayed from
    the store vs simulated live and recorded.  ``None`` in, ``None``
    out (replay was off)."""
    if session is None:
        return None
    return {
        "replayed": len(session.replayed),
        "recorded": len(session.recorded),
    }


def execute_spec(
    spec: JobSpec,
    tracer: Optional[Tracer] = None,
    replay_session: object = AUTO_REPLAY,
) -> RunResult:
    """Run one job in this process, returning the live result
    (including non-serialisable ``extra`` entries such as the HyMM
    region plan).

    ``tracer`` (optional) receives the run's simulated-time events --
    the ``python -m repro.obs trace`` entry point.  Tracing never
    changes the result: stats are identical with or without it.

    ``replay_session`` defaults to :data:`AUTO_REPLAY`: a per-job
    session over the shared trace tree (see :func:`trace_root`), so
    repeated executions of the same spec replay their recorded phases
    instead of simulating.  Pass ``None`` to force a fully live run, or
    an explicit :class:`~repro.sim.replay.TraceSession` to direct the
    traces elsewhere and read the counters afterwards.
    """
    from repro.bench.workloads import make_model

    model = make_model(
        spec.dataset,
        spec.scale,
        n_layers=spec.n_layers,
        seed=spec.seed,
        feature_length=spec.feature_length,
    )
    accelerator = make_accelerator(
        spec.kind, spec.config, spec.sort_mode, seed=spec.seed
    )
    if replay_session is AUTO_REPLAY:
        replay_session = job_trace_session(spec)
    return accelerator.run_inference(
        model, tracer=tracer, replay_session=replay_session
    )


def execute_job(
    spec: JobSpec, replay: bool = True, trace_root_dir: Optional[str] = None
) -> Dict[str, object]:
    """Worker entry point: run one job and return its serialised dict.

    Returning the wire form (rather than the live object) keeps the
    pool transport, the disk cache, and serial execution on one code
    path, which is what makes ``n_jobs=4`` bit-identical to serial.

    With ``replay`` (the default) the run records/replays phase traces
    through the job's directory under ``trace_root_dir`` (or the
    process-wide :func:`trace_root`), and the returned dict carries a
    ``"replay"`` side-channel entry -- ``{"replayed": n, "recorded":
    m}`` -- that :class:`~repro.runtime.executor.SweepExecutor` strips
    into the run manifest's replay counters before deserialising the
    result.
    """
    # Re-establish the submitting request's correlation context in this
    # (possibly pool-worker) process: JobSpec.corr_id is how the ID
    # crosses the pickle boundary.
    bind_correlation(spec.corr_id)
    # Telemetry-off contract: skip even building the log payloads (the
    # fingerprint is a SHA-256) unless a handler actually wants them.
    chatty = _log.isEnabledFor(logging.INFO)
    t0 = time.perf_counter()
    if chatty:
        _log.info(
            "job start",
            extra={"fingerprint": spec.fingerprint(), "job": spec.describe()},
        )
    try:
        session = job_trace_session(spec, trace_root_dir) if replay else None
        with span("runtime.execute", job=spec.describe()):
            doc = execute_spec(spec, replay_session=session).to_dict()
        summary = replay_summary(session)
        if summary is not None:
            doc["replay"] = summary
    except Exception as exc:
        if _log.isEnabledFor(logging.WARNING):
            _log.warning(
                "job failed",
                extra={
                    "fingerprint": spec.fingerprint(),
                    "error": f"{type(exc).__name__}: {exc}",
                    "wall_s": round(time.perf_counter() - t0, 6),
                },
            )
        raise
    if chatty:
        _log.info(
            "job done",
            extra={
                "fingerprint": spec.fingerprint(),
                "wall_s": round(time.perf_counter() - t0, 6),
                "replay": summary,
            },
        )
    return doc
