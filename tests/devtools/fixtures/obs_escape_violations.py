"""Fixture for the obs-hygiene rule's transitive pass.

Loaded as ``repro.hymm.obs_escape_fixture`` together with
``obs_escape_helper.py`` (``repro.util.trace_helper``) and
``obs_escape_audited.py`` (``repro.sim.audited_emitter``).  Guarding a
*call* to a helper does not guard the helper's own emission -- only
the emission site's guard counts -- so the first kernel is a finding
even with its lexical guard, while the self-guarded helper and the
audited engine path are clean.
"""

from repro.sim.audited_emitter import engine_emit
from repro.util.trace_helper import emit_guarded, emit_unguarded


def kernel_hidden_emission(tracer, cycle):
    if tracer.enabled:  # guards the call, NOT the helper's emission
        emit_unguarded(tracer, "spmm", cycle)  # VIOLATION


def kernel_guarded_helper(tracer, cycle):
    emit_guarded(tracer, "spmm", cycle)  # clean: helper guards itself


def kernel_audited_path(tracer, cycle):
    engine_emit(tracer, "spmm", cycle)  # clean: audited package
