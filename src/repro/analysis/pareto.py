"""Pareto-front utilities for design-space exploration.

The DMB/threshold/PE sweeps produce (cost, performance) points; a
designer cares about the non-dominated subset.  Points are
``(cost, value, payload)`` tuples where *lower* cost and *lower* value
are better (e.g. area mm^2 vs cycles).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def pareto_front(points: Iterable[Sequence]) -> List[Tuple]:
    """Return the non-dominated points, sorted by ascending cost.

    A point dominates another if it is no worse in both dimensions and
    strictly better in at least one.  Payload elements beyond the first
    two are carried through untouched.
    """
    pts = [tuple(p) for p in points]
    for p in pts:
        if len(p) < 2:
            raise ValueError("each point needs at least (cost, value)")
    pts.sort(key=lambda p: (p[0], p[1]))
    front: List[Tuple] = []
    best_value = float("inf")
    for p in pts:
        if p[1] < best_value:
            front.append(p)
            best_value = p[1]
    return front


def dominated(point: Sequence, others: Iterable[Sequence]) -> bool:
    """Whether ``point`` is dominated by any of ``others``."""
    c, v = point[0], point[1]
    for other in others:
        oc, ov = other[0], other[1]
        if (oc, ov) == (c, v):
            continue
        if oc <= c and ov <= v and (oc < c or ov < v):
            return True
    return False
