"""Generators for the paper's figures (as data series + text tables)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.bench.report import (
    format_table,
    render_phase_breakdown,
    render_series,
)
from repro.bench.runner import (
    aggregation_cycles,
    aggregation_hit_rate,
    aggregation_utilization,
    phase_snapshot_rows,
    run_accelerator,
    run_suite,
)
from repro.bench.workloads import BENCH_DATASETS, bench_scale
from repro.graphs.partition import plan_regions
from repro.graphs.preprocess import degree_sort
from repro.graphs.registry import get_spec, load_dataset
from repro.sparse.stats import degree_cdf

_FIG7_KINDS = ("op", "rwp", "hymm")


def _abbrev(name: str) -> str:
    return get_spec(name).abbrev


def fig2_degree_distribution(
    datasets: Iterable[str] = BENCH_DATASETS,
    fractions=(0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    seed: int = 0,
) -> Dict[str, object]:
    """Fig. 2: cumulative edge share vs top-degree node fraction.

    The paper's headline: the top 20% of nodes account for >70% of all
    edges.
    """
    series: Dict[str, Dict[str, float]] = {}
    top20: Dict[str, float] = {}
    for name in datasets:
        ds = load_dataset(name, scale=bench_scale(name), seed=seed)
        fr, shares = degree_cdf(ds.adjacency.row_degrees(), np.asarray(fractions))
        abbr = _abbrev(name)
        series[abbr] = {f"top {int(f * 100)}%": float(s) for f, s in zip(fr, shares)}
        top20[abbr] = float(shares[list(fractions).index(0.2)])
    text = render_series("Fig.2  Edge share owned by top-degree nodes", series)
    return {"series": series, "top20_share": top20, "text": text}


def fig6_storage_overhead(
    datasets: Iterable[str] = BENCH_DATASETS, seed: int = 0
) -> Dict[str, object]:
    """Fig. 6: storage overhead of HyMM's region tiling vs plain CSR.

    Paper: 10.2% for Cora, shrinking as graphs grow.
    """
    headers = ["dataset", "baseline KB", "tiled KB", "overhead %"]
    rows = []
    overhead: Dict[str, float] = {}
    for name in datasets:
        ds = load_dataset(name, scale=bench_scale(name), seed=seed)
        sort = degree_sort(ds.adjacency)
        plan = plan_regions(sort.matrix, ds.hidden_dim, 256 * 1024)
        rep = plan.tiled.storage_report()
        abbr = _abbrev(name)
        overhead[abbr] = rep.overhead_pct
        rows.append([
            abbr,
            rep.baseline_bytes / 1024,
            rep.tiled_bytes / 1024,
            rep.overhead_pct,
        ])
    return {
        "overhead_pct": overhead,
        "rows": rows,
        "text": "Fig.6  Storage overhead of region tiling\n"
        + format_table(headers, rows),
    }


def fig7_speedup(
    datasets: Iterable[str] = BENCH_DATASETS,
    kinds=_FIG7_KINDS,
    seed: int = 0,
) -> Dict[str, object]:
    """Fig. 7: speedup of each dataflow, normalised to the outer product.

    Two series sets are reported: total inference cycles and
    aggregation-phase cycles (the SpDeMM whose dataflow varies across
    the compared accelerators, Table I).  Paper shape: HyMM wins
    everywhere, peaking at AP (4.78x over OP); RWP beats OP.
    """
    total: Dict[str, Dict[str, float]] = {k: {} for k in kinds}
    agg: Dict[str, Dict[str, float]] = {k: {} for k in kinds}
    for name in datasets:
        runs = run_suite(name, kinds=kinds, seed=seed)
        abbr = _abbrev(name)
        base_total = runs["op"].stats.cycles
        base_agg = aggregation_cycles(runs["op"])
        for kind in kinds:
            total[kind][abbr] = base_total / max(1, runs[kind].stats.cycles)
            agg[kind][abbr] = base_agg / max(1.0, aggregation_cycles(runs[kind]))
    text = (
        render_series("Fig.7a  Total-inference speedup over OP", total, "{:.2f}")
        + "\n\n"
        + render_series("Fig.7b  Aggregation speedup over OP", agg, "{:.2f}")
    )
    return {"total_speedup": total, "aggregation_speedup": agg, "text": text}


def fig8_alu_utilization(
    datasets: Iterable[str] = BENCH_DATASETS,
    kinds=_FIG7_KINDS,
    seed: int = 0,
) -> Dict[str, object]:
    """Fig. 8: ALU utilisation of the aggregation SpDeMM.

    Paper shape: OP lowest; HyMM up to +27% over RWP (at AC); CR/CS/PH
    low for everyone (feature sparsity and long feature vectors).  The
    aggregation phase is reported because it is where the compared
    dataflows differ (Table I); whole-run numbers are included for
    completeness.
    """
    series: Dict[str, Dict[str, float]] = {k: {} for k in kinds}
    whole_run: Dict[str, Dict[str, float]] = {k: {} for k in kinds}
    for name in datasets:
        runs = run_suite(name, kinds=kinds, seed=seed)
        for kind in kinds:
            series[kind][_abbrev(name)] = aggregation_utilization(runs[kind])
            whole_run[kind][_abbrev(name)] = runs[kind].stats.alu_utilization()
    text = (
        render_series("Fig.8  ALU utilization (aggregation phase)", series)
        + "\n\n"
        + render_series("Fig.8b  ALU utilization (whole inference)", whole_run)
    )
    return {"utilization": series, "whole_run": whole_run, "text": text}


def fig9_hit_rate(
    datasets: Iterable[str] = BENCH_DATASETS,
    kinds=_FIG7_KINDS,
    seed: int = 0,
) -> Dict[str, object]:
    """Fig. 9: DMB hit rate during aggregation.

    Paper shape: HyMM highest everywhere (confined address ranges +
    near-memory merging); whole-run rates included for completeness.
    """
    series: Dict[str, Dict[str, float]] = {k: {} for k in kinds}
    whole_run: Dict[str, Dict[str, float]] = {k: {} for k in kinds}
    for name in datasets:
        runs = run_suite(name, kinds=kinds, seed=seed)
        for kind in kinds:
            series[kind][_abbrev(name)] = aggregation_hit_rate(runs[kind])
            whole_run[kind][_abbrev(name)] = runs[kind].stats.hit_rate()
    text = (
        render_series("Fig.9  DMB hit rate (aggregation phase)", series)
        + "\n\n"
        + render_series("Fig.9b  DMB hit rate (whole inference)", whole_run)
    )
    return {"hit_rate": series, "whole_run": whole_run, "text": text}


def fig10_partial_outputs(
    datasets: Iterable[str] = BENCH_DATASETS, seed: int = 0
) -> Dict[str, object]:
    """Fig. 10: memory consumed by partial outputs, with vs without the
    near-DMB accumulator.  Paper: without it the footprint "frequently
    exceeds the DMB's capacity, resulting in data being flushed to
    DRAM"; with it, up to 85% reduction (AP).  The sampled footprint
    timeline behind the curve is in each run's
    ``stats.partial_timeline``.
    """
    headers = ["dataset", "no accumulator KB", "exceeds DMB?",
               "with accumulator KB", "reduction %", "vs naive spill %"]
    rows = []
    reduction: Dict[str, float] = {}
    timelines: Dict[str, list] = {}
    dmb_bytes = 256 * 1024
    for name in datasets:
        without = run_accelerator(name, "op-deferred", seed=seed)
        with_acc = run_accelerator(name, "hymm", seed=seed)
        peak_wo = without.stats.partial_peak_bytes
        peak_w = with_acc.stats.partial_peak_bytes
        abbr = _abbrev(name)
        red = 100.0 * (1.0 - peak_w / peak_wo) if peak_wo else 0.0
        reduction[abbr] = red
        timelines[abbr] = without.stats.partial_timeline
        # Reduction against spilling every partial, at the run's
        # configured buffer-line size (not the 64B default).
        line = with_acc.config.line_bytes if with_acc.config else 64
        red_naive = 100.0 * with_acc.stats.partial_reduction(line)
        rows.append([
            abbr, peak_wo / 1024,
            "yes" if peak_wo > dmb_bytes else "no",
            peak_w / 1024, red, red_naive,
        ])
    return {
        "reduction_pct": reduction,
        "rows": rows,
        "timelines": timelines,
        "text": "Fig.10  Peak partial-output footprint\n" + format_table(headers, rows),
    }


def phases_breakdown(
    datasets: Iterable[str] = BENCH_DATASETS,
    kinds=_FIG7_KINDS,
    seed: int = 0,
) -> Dict[str, object]:
    """Per-phase cycle / DRAM / hit breakdown (Figs. 8 & 11 companion).

    One row per (dataset, accelerator, phase) from the run's
    ``phase_snapshots``; each run's TOTAL row equals its whole-run
    SimStats by the conservation invariant, so this table is the bench
    view of what ``python -m repro.obs report <trace>`` prints.
    """
    rows_by_label: Dict[str, list] = {}
    data: Dict[str, Dict[str, Dict[str, Dict[str, int]]]] = {}
    for name in datasets:
        runs = run_suite(name, kinds=kinds, seed=seed)
        abbr = _abbrev(name)
        data[abbr] = {}
        for kind in kinds:
            rows = phase_snapshot_rows(runs[kind])
            rows_by_label[f"{abbr}/{kind}"] = rows
            data[abbr][kind] = {phase: fields for phase, fields in rows}
    text = render_phase_breakdown(
        "Phases  Per-phase cycle and DRAM breakdown", rows_by_label
    )
    return {"phases": data, "text": text}


def fig11_dram_breakdown(
    datasets: Iterable[str] = BENCH_DATASETS,
    kinds=_FIG7_KINDS,
    seed: int = 0,
) -> Dict[str, object]:
    """Fig. 11: off-chip traffic by category, and HyMM's reduction.

    Paper: HyMM cuts DRAM accesses by 91% (AP) and 89% (AC) vs the
    conventional dataflow.
    """
    breakdown: Dict[str, Dict[str, Dict[str, int]]] = {}
    reduction_vs_op: Dict[str, float] = {}
    headers = ["dataset", "dataflow", "A", "X", "W", "XW", "AXW", "partial", "H", "total MB"]
    rows = []
    for name in datasets:
        runs = run_suite(name, kinds=kinds, seed=seed)
        abbr = _abbrev(name)
        breakdown[abbr] = {}
        for kind in kinds:
            bd = runs[kind].stats.dram_breakdown()
            breakdown[abbr][kind] = bd
            rows.append(
                [abbr, kind]
                + [bd.get(t, 0) // 1024 for t in ("A", "X", "W", "XW", "AXW", "partial", "H")]
                + [runs[kind].stats.dram_total_bytes() / (1024 * 1024)]
            )
        op_total = runs["op"].stats.dram_total_bytes()
        hymm_total = runs["hymm"].stats.dram_total_bytes()
        reduction_vs_op[abbr] = 100.0 * (1.0 - hymm_total / op_total) if op_total else 0.0
    text = (
        "Fig.11  DRAM access breakdown (KB per category)\n"
        + format_table(headers, rows)
        + "\n\nHyMM DRAM reduction vs OP (%): "
        + ", ".join(f"{k}={v:.1f}" for k, v in reduction_vs_op.items())
    )
    return {"breakdown": breakdown, "reduction_vs_op": reduction_vs_op, "text": text}
