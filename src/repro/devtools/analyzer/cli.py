"""Command line interface: ``python -m repro.devtools.analyzer``.

Exit status: 0 when every finding is suppressed (inline) or baselined,
1 when any new error-severity finding exists (warnings are reported but
do not fail unless ``--strict``), 2 on usage/parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.devtools.analyzer.core import (
    REGISTRY,
    Finding,
    Project,
    load_pyproject_config,
    make_rules,
    run_rules,
)
from repro.devtools.analyzer.baseline import Baseline

# Registration side effect: importing the rules package fills REGISTRY.
import repro.devtools.analyzer.rules  # noqa: F401  isort: skip


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.analyzer",
        description=(
            "AST-based contract checker for the HyMM reproduction: "
            "determinism, wire-schema completeness, cycle-accounting "
            "conservation, config hygiene, shared-state hazards."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="output format (default: text); `github` emits workflow "
             "command annotations (::error file=...) that land on the "
             "PR diff",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline file of accepted findings (suppressed, tracked)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to --baseline (or .analyzer-baseline.json) "
             "and exit 0",
    )
    parser.add_argument(
        "--rules", metavar="NAME[,NAME...]", default=None,
        help="run only these rules (default: all registered rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures too",
    )
    parser.add_argument(
        "--time-budget", metavar="SECONDS", type=float, default=None,
        help="fail (exit 1) if parsing + analysis exceeds this wall "
             "time -- keeps the interprocedural pass honest in the "
             "dev loop",
    )
    return parser


def _render_text(
    findings: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[str],
    out,
) -> None:
    for finding in findings:
        print(finding.render(), file=out)
    if baselined:
        print(f"({len(baselined)} baselined finding(s) suppressed)", file=out)
    for key in stale:
        print(
            f"stale baseline entry (no longer fires, delete it): {key}",
            file=out,
        )
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    print(
        f"{len(findings)} finding(s): {errors} error(s), {warnings} warning(s)",
        file=out,
    )


def _render_json(
    findings: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[str],
    out,
) -> None:
    payload = {
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "key": f.key(),
            }
            for f in findings
        ],
        "baselined": [f.key() for f in baselined],
        "stale_baseline_keys": list(stale),
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def _escape_github(value: str) -> str:
    """Workflow-command data escaping (the `::error ...::` protocol)."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )


def _render_github(
    findings: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[str],
    out,
) -> None:
    """GitHub Actions annotations: one workflow command per finding.

    Runners cap annotations (10 per step shown inline), but every one
    is still recorded in the check run; the trailing plain-text summary
    keeps the log readable either way.
    """
    for f in findings:
        level = "error" if f.severity == "error" else "warning"
        print(
            f"::{level} file={_escape_github(f.path)},line={f.line},"
            f"col={f.col},title=analyzer {f.rule}::"
            f"{_escape_github(f.message)}",
            file=out,
        )
    for key in stale:
        print(
            "::warning title=analyzer baseline::stale baseline entry "
            f"(no longer fires, delete it): {_escape_github(key)}",
            file=out,
        )
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    print(
        f"{len(findings)} finding(s): {errors} error(s), {warnings} "
        f"warning(s); {len(baselined)} baselined",
        file=out,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, rule_cls in REGISTRY.items():
            print(f"{name:20s} [{rule_cls.default_severity}] "
                  f"{rule_cls.description}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path(s): {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    config = load_pyproject_config(Path.cwd())
    only: Optional[List[str]] = None
    if args.rules is not None:
        only = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        rules = make_rules(config, only=only)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    started = time.perf_counter()
    project = Project.load(paths, root=Path.cwd())
    for path, message in project.parse_errors:
        print(f"error: cannot parse {path}: {message}", file=sys.stderr)
    if project.parse_errors:
        return 2

    # Stale-suppression reporting only makes sense for a full run: with
    # a --rules subset, unexecuted rules' suppressions would all look
    # unused.  --write-baseline snapshots real findings only.
    findings = run_rules(
        project,
        rules,
        report_stale_suppressions=only is None and not args.write_baseline,
    )
    elapsed = time.perf_counter() - started

    baseline_path = Path(
        args.baseline if args.baseline is not None else ".analyzer-baseline.json"
    )
    if args.write_baseline:
        Baseline.from_findings(findings).dump(baseline_path)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}; "
            f"replace every placeholder reason with a justification",
            file=sys.stderr,
        )
        return 0

    baseline = Baseline()
    if args.baseline is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    new, baselined, stale = baseline.split(findings)
    out = sys.stdout
    if args.format == "json":
        _render_json(new, baselined, stale, out)
    elif args.format == "github":
        _render_github(new, baselined, stale, out)
    else:
        _render_text(new, baselined, stale, out)

    if args.time_budget is not None and elapsed > args.time_budget:
        print(
            f"error: analysis took {elapsed:.2f}s, over the "
            f"--time-budget of {args.time_budget:.2f}s",
            file=sys.stderr,
        )
        return 1

    failing = [
        f for f in new if f.severity == "error" or args.strict
    ]
    return 1 if failing else 0
