"""Rule ``determinism``: no wall-clock or ambient randomness in sim code.

The runtime's core contract is that a sweep run with ``n_jobs=4`` is
bit-identical to the same sweep run serially, and that a cached result
equals a recomputed one.  That only holds if simulator/model code never
reads ambient nondeterministic state:

* **absolute wall-clock time** (``time.time``, ``datetime.now``, ...)
  -- timestamps differ between runs and machines;
* **process-global RNG state** (``random.random``, the legacy
  ``numpy.random.*`` functions, ``np.random.seed``) -- the global
  stream's position depends on unrelated code having run first, which
  differs between a pool worker and the parent process;
* **unseeded generators** (``np.random.default_rng()`` with no
  argument, ``random.Random()`` with no argument) -- fresh OS entropy
  per call;
* **hard-coded literal seeds** (``np.random.default_rng(0xC0FFEE)``)
  -- deterministic, but invisible to the :class:`JobSpec` fingerprint:
  two jobs that differ only in ``seed`` would simulate identically,
  silently.  Seeds must flow in from config / the job spec.

Duration measurement (``time.perf_counter`` / ``time.monotonic``) is
deliberately *not* flagged: elapsed-time metadata (``wall_seconds``,
``sort_ms``) measures the host, never feeds simulated results, and is
excluded from result comparisons.

Scope: the simulator/model packages (``options["scope"]``).  The
execution layer (``repro.runtime``), which legitimately timestamps
manifests and cache records, is outside the scope list.

Since the interprocedural layer landed, the rule also checks *escapes*:
a call from scope into an out-of-scope helper whose inferred effects
(:mod:`repro.devtools.analyzer.effects`) include ``reads-wall-clock``
or ``ambient-entropy`` is flagged at the call site with the witness
chain -- moving ``time.time()`` into a utility module no longer hides
it.  Direct uses inside scope keep their precise intraprocedural
findings (literal-seed detection needs the call expression itself).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.analyzer import astutil
from repro.devtools.analyzer.callgraph import KIND_CALL, get_callgraph
from repro.devtools.analyzer.core import Finding, Project, Rule, register
from repro.devtools.analyzer.effects import (
    AMBIENT_ENTROPY,
    READS_WALL_CLOCK,
    get_effects,
)

#: Fully qualified callables that read absolute wall-clock time.
WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Seedable generator constructors: fine with a non-literal seed
#: argument, flagged when unseeded or seeded with a literal.
GENERATORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "random.Random",
}

#: Other ambient-entropy reads that can never be replayed.
AMBIENT = {
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbits",
    "secrets.choice",
}

#: numpy.random attributes that are *not* the legacy global-state API.
NUMPY_RANDOM_OK = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",  # explicit instance; construction is checked separately
}


@register
class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "no wall-clock reads, global-RNG use, unseeded or literal-seeded "
        "generators in simulator/model packages"
    )
    default_severity = "error"
    default_options = {
        "scope": [
            "repro.sim",
            "repro.hymm",
            "repro.baselines",
            "repro.graphs",
            "repro.sparse",
            "repro.gcn",
        ],
    }

    def run(self, project: Project) -> Iterator[Finding]:
        scope = tuple(self.options["scope"])
        for mod in project.in_package(*scope):
            aliases = astutil.import_aliases(mod.tree)
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Call):
                    yield from self._check_call(project, mod, node, aliases)
                elif isinstance(node, (ast.Attribute, ast.Name)):
                    yield from self._check_reference(project, mod, node, aliases)
        yield from self._check_escapes(project, scope)

    def _check_escapes(
        self, project: Project, scope: "tuple[str, ...]"
    ) -> Iterator[Finding]:
        """Calls out of scope into helpers that carry entropy/clock."""
        graph = get_callgraph(project)
        effects = get_effects(project)
        in_scope = lambda m: any(  # noqa: E731
            m == p or m.startswith(p + ".") for p in scope
        )
        for info in graph.in_package(*scope):
            for site in graph.sites(info.qname):
                if site.kind != KIND_CALL or site.callee is None:
                    continue
                callee = graph.functions.get(site.callee)
                if callee is None or in_scope(callee.module.module):
                    continue  # in-scope callees get their own findings
                fx = effects.of(site.callee)
                for effect in (READS_WALL_CLOCK, AMBIENT_ENTROPY):
                    if effect not in fx.all:
                        continue
                    what = (
                        "wall-clock time"
                        if effect == READS_WALL_CLOCK
                        else "ambient entropy"
                    )
                    chain = effects.render_chain(site.callee, effect)
                    yield self.finding(
                        project, info.module, site.node,
                        f"`{callee.name}` (outside the determinism scope) "
                        f"reads {what} [{effect}]: {info.name} -> {chain}; "
                        "simulated results must not depend on it",
                        symbol=f"{info.name}->{callee.name}:{effect}",
                    )

    # ------------------------------------------------------------------
    def _check_call(self, project, mod, node: ast.Call, aliases) -> Iterator[Finding]:
        target = _resolve_imported(node.func, aliases)
        if target is None:
            return
        if target in GENERATORS:
            if not node.args and not node.keywords:
                yield self.finding(
                    project, mod, node,
                    f"unseeded RNG: {target}() draws fresh OS entropy per "
                    f"call; pass a seed that originates in the job spec/config",
                    symbol=target,
                )
            else:
                seed = node.args[0] if node.args else None
                if seed is None:
                    for kw in node.keywords:
                        if kw.arg in ("seed", "x"):
                            seed = kw.value
                if isinstance(seed, ast.Constant) and isinstance(
                    seed.value, (int, float)
                ):
                    yield self.finding(
                        project, mod, node,
                        f"hard-coded RNG seed {seed.value!r} in {target}(): "
                        f"invisible to the JobSpec fingerprint; thread the "
                        f"seed in from config/JobSpec",
                        symbol=f"{target}:literal-seed",
                    )

    def _check_reference(self, project, mod, node, aliases) -> Iterator[Finding]:
        target = _resolve_imported(node, aliases)
        if target is None:
            return
        if target in WALL_CLOCK or target in AMBIENT:
            what = "wall-clock read" if target in WALL_CLOCK else "ambient entropy"
            yield self.finding(
                project, mod, node,
                f"{what}: {target} is nondeterministic across runs/hosts; "
                f"simulated results must not depend on it",
                symbol=target,
            )
            return
        head, _, attr = target.rpartition(".")
        if head == "random" and attr not in ("Random", "SystemRandom"):
            yield self.finding(
                project, mod, node,
                f"process-global RNG: random.{attr} uses the module-level "
                f"generator; construct random.Random(seed) from the job seed",
                symbol=f"random.{attr}",
            )
        elif head == "numpy.random" and attr not in NUMPY_RANDOM_OK:
            yield self.finding(
                project, mod, node,
                f"legacy global RNG: numpy.random.{attr} mutates/reads "
                f"process-global state; use numpy.random.default_rng(seed)",
                symbol=f"numpy.random.{attr}",
            )


def _resolve_imported(node: ast.AST, aliases) -> "str | None":
    """Fully qualified name of a Name/Attribute chain whose head was
    actually imported in this module; ``None`` otherwise.

    Requiring the head to appear in the import table means a local
    variable that happens to be called ``time`` or ``random`` can never
    trigger a false positive.
    """
    dotted = astutil.dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved = aliases.get(head)
    if resolved is None:
        return None
    return f"{resolved}.{rest}" if rest else resolved
