"""The dataset container the rest of the library consumes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sparse import COOMatrix, CSRMatrix, degree_stats, sparsity


@dataclass
class GraphDataset:
    """A graph + node features, ready for GCN inference.

    Attributes
    ----------
    name:
        Registry name (e.g. ``"cora"``) or a user-chosen label.
    adjacency:
        Square adjacency matrix in canonical COO (unnormalised, no
        self-loops; preprocessing adds both).
    features:
        Node feature matrix ``X`` in CSR (``n_nodes x feature_length``);
        most Table II datasets have sparse features, so CSR is the
        storage the combination engine streams.
    hidden_dim:
        GCN hidden layer width (Table II "Layer dimension", 16 for all
        paper datasets).
    scale:
        Scale factor relative to the full Table II size (1.0 = paper
        scale).  Recorded so experiment reports can name the scale used.
    """

    name: str
    adjacency: COOMatrix
    features: CSRMatrix
    hidden_dim: int = 16
    scale: float = 1.0

    def __post_init__(self) -> None:
        n = self.adjacency.shape[0]
        if self.adjacency.shape[0] != self.adjacency.shape[1]:
            raise ValueError("adjacency matrix must be square")
        if self.features.shape[0] != n:
            raise ValueError(
                f"features have {self.features.shape[0]} rows for {n} nodes"
            )
        if self.hidden_dim <= 0:
            raise ValueError("hidden_dim must be positive")

    @property
    def n_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def n_edges(self) -> int:
        return self.adjacency.nnz

    @property
    def feature_length(self) -> int:
        return self.features.shape[1]

    @property
    def adjacency_sparsity(self) -> float:
        """Fraction of zero cells in the adjacency matrix (Table II)."""
        return sparsity(self.adjacency)

    @property
    def feature_sparsity(self) -> float:
        """Fraction of zero cells in the feature matrix (Table II)."""
        cells = self.features.shape[0] * self.features.shape[1]
        return 1.0 - self.features.nnz / cells if cells else 0.0

    def summary(self) -> dict:
        """Table II-style row for this dataset."""
        stats = degree_stats(self.adjacency, axis="row")
        return {
            "name": self.name,
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "adjacency_sparsity": self.adjacency_sparsity,
            "feature_sparsity": self.feature_sparsity,
            "feature_length": self.feature_length,
            "hidden_dim": self.hidden_dim,
            "scale": self.scale,
            "top20_edge_share": stats.top20_edge_share,
            "max_degree": stats.max,
        }

    def __repr__(self) -> str:
        return (
            f"GraphDataset({self.name!r}, nodes={self.n_nodes}, "
            f"edges={self.n_edges}, features={self.feature_length}, "
            f"scale={self.scale})"
        )
