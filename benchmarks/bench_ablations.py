"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips one HyMM policy on Amazon-Photo under buffer
pressure (64 KB DMB at the bench scale, preserving the paper-scale
working-set-to-buffer ratio) and reports the cycle/traffic cost of
losing the feature:

1. near-memory accumulator (Section IV-D)
2. OP-first region execution order (Section III)
3. unified vs split buffer (Section III)
4. LSQ store-to-load forwarding (Section IV-B)
5. LRU vs FIFO eviction (Section IV-D)
6. degree sorting (Table I's preprocessing; tested separately below)

All variants are :class:`repro.runtime.JobSpec` points executed through
``run_sweep`` (parallel with ``REPRO_BENCH_JOBS`` workers, cached like
every other runtime job).
"""

import os

from repro.bench import format_table
from repro.bench.runner import job_spec, run_sweep
from repro.hymm import HyMMConfig

_DATASET = "amazon-photo"
_PRESSURED = dict(dmb_bytes=64 * 1024)
_N_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def _spec(sort_mode=None, **overrides):
    config = HyMMConfig(**{**_PRESSURED, **overrides})
    return job_spec(_DATASET, "hymm", config=config, sort_mode=sort_mode)


def test_ablations(benchmark, emit):
    def run_all():
        specs = {
            "paper default": _spec(),
            "no accumulator": _spec(near_memory_accumulator=False),
            "RWP-first order": _spec(op_first=False),
            "split buffers": _spec(unified_buffer=False),
            "no forwarding": _spec(forwarding=False),
            "FIFO eviction": _spec(lru=False),
        }
        sweep = run_sweep(list(specs.values()), n_jobs=_N_JOBS)
        variants = {name: sweep.for_spec(s) for name, s in specs.items()}
        base = variants["paper default"]
        headers = ["variant", "cycles", "vs default", "DRAM MB", "hit rate"]
        rows = []
        for name, r in variants.items():
            rows.append([
                name,
                r.stats.cycles,
                r.stats.cycles / base.stats.cycles,
                r.stats.dram_total_bytes() / (1024 * 1024),
                r.stats.hit_rate(),
            ])
        return variants, format_table(headers, rows)

    variants, text = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("ablations", text)

    base = variants["paper default"]
    # Losing the accumulator must cost cycles (PE-side merging).
    assert variants["no accumulator"].stats.cycles > base.stats.cycles
    # The split organisation cannot beat the unified buffer here.
    assert variants["split buffers"].stats.dram_total_bytes() >= (
        base.stats.dram_total_bytes()
    )
    # No ablation changes the computed result (checked in tests/), and
    # none may reduce traffic meaningfully below the default's (the
    # phase-order flip can move it by a fraction of a percent).
    for name, r in variants.items():
        assert r.stats.dram_total_bytes() >= base.stats.dram_total_bytes() * 0.99, name


def test_sort_mode_ablation(benchmark, emit):
    """Degree sorting is HyMM's only preprocessing (Table I); removing
    or randomising it must cost cycles and traffic."""
    modes = ("degree", "none", "random")

    def run_all():
        specs = {mode: _spec(sort_mode=mode) for mode in modes}
        sweep = run_sweep(list(specs.values()), n_jobs=_N_JOBS)
        results = {mode: sweep.for_spec(s) for mode, s in specs.items()}
        headers = ["sort mode", "cycles", "DRAM MB", "hit rate", "sort ms"]
        rows = [
            [mode, r.stats.cycles, r.stats.dram_total_bytes() / (1024 * 1024),
             r.stats.hit_rate(), r.sort_ms]
            for mode, r in results.items()
        ]
        return results, format_table(headers, rows)

    results, text = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("ablation_sorting", text)
    degree = results["degree"]
    for mode in ("none", "random"):
        assert results[mode].stats.dram_total_bytes() > degree.stats.dram_total_bytes(), mode
    assert degree.sort_ms > 0
    assert results["none"].sort_ms == 0
