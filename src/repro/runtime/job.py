"""Job specification: one simulation point with a stable fingerprint.

A :class:`JobSpec` pins down everything that determines a simulation's
outcome -- the workload (dataset, scale, layers, seeds), the
accelerator (kind, optional config, optional sort mode) -- and nothing
that doesn't (worker count, cache location).  Its fingerprint is a
SHA-256 over the canonical JSON form of those fields plus the result
schema version and the package version, so two processes (or two
sessions, or two CI runs) computing the fingerprint of the same point
always agree, and any change that could alter results (a field, the
result schema, the simulator version) changes the key.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.hymm.config import HyMMConfig

#: Version of the JobSpec/RunResult wire format.  Bump whenever the
#: canonical payload or the serialised result layout changes; every
#: fingerprint (and therefore every cache key) changes with it.
#: v2: HyMM's "random" sort permutation is now drawn from the job's
#: ``seed`` instead of a constant, so cached random-sort points from
#: v1 no longer describe what the simulator would compute.
#: v3: ``RunResult`` gained per-phase SimStats snapshots
#: (``phase_snapshots``), so v2 cache records lack fields the current
#: deserialiser requires.
SCHEMA_VERSION = 3


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports nothing from runtime, but
    # keeping this out of module scope avoids any import-order surprise.
    import repro

    return getattr(repro, "__version__", "0")


@dataclass(frozen=True)
class JobSpec:
    """One (workload, accelerator) simulation point.

    ``config=None`` means "the accelerator's own default configuration"
    (HyMM's unified buffer, the baselines' split buffers) and is a
    *different* point from an explicit ``HyMMConfig()``.  ``sort_mode``
    and ``feature_length`` default to ``None`` = the model/accelerator
    defaults, so ordinary bench points fingerprint identically whether
    or not the caller spells them out.
    """

    dataset: str
    kind: str
    scale: float
    n_layers: int = 1
    seed: int = 0
    config: Optional[HyMMConfig] = None
    sort_mode: Optional[str] = None
    feature_length: Optional[int] = None
    #: Telemetry correlation ID (minted at /submit, carried into worker
    #: processes so log records and spans join up).  Deliberately
    #: EXCLUDED from the canonical payload: two submits of the same
    #: point must share a fingerprint -- and a cache key -- no matter
    #: which request carried them.
    corr_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.dataset:
            raise ValueError("dataset must be non-empty")
        if not self.kind:
            raise ValueError("kind must be non-empty")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.n_layers <= 0:
            raise ValueError("n_layers must be positive")

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def canonical_payload(self) -> Dict[str, Any]:
        """The exact dict the fingerprint hashes (useful in tests and
        for debugging cache keys)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "repro_version": _package_version(),
            "dataset": self.dataset,
            "kind": self.kind,
            "scale": self.scale,
            "n_layers": self.n_layers,
            "seed": self.seed,
            "config": None if self.config is None else self.config.to_dict(),
            "sort_mode": self.sort_mode,
            "feature_length": self.feature_length,
        }

    def fingerprint(self) -> str:
        """Stable SHA-256 hex digest of the canonical payload."""
        blob = json.dumps(
            self.canonical_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Serialisation (manifests, cache records)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "dataset": self.dataset,
            "kind": self.kind,
            "scale": self.scale,
            "n_layers": self.n_layers,
            "seed": self.seed,
            "config": None if self.config is None else self.config.to_dict(),
            "sort_mode": self.sort_mode,
            "feature_length": self.feature_length,
            "corr_id": self.corr_id,
        }
        if self.corr_id is None:
            # Telemetry off (or a spec that never passed through /submit)
            # serialises byte-identically to the pre-telemetry format.
            del doc["corr_id"]
        return doc

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        cfg = data.get("config")
        return cls(
            dataset=data["dataset"],
            kind=data["kind"],
            scale=data["scale"],
            n_layers=data.get("n_layers", 1),
            seed=data.get("seed", 0),
            config=None if cfg is None else HyMMConfig.from_dict(cfg),
            sort_mode=data.get("sort_mode"),
            feature_length=data.get("feature_length"),
            corr_id=data.get("corr_id"),
        )

    def trace_dir(self, root: str) -> str:
        """This job's phase-trace directory under ``root``.

        One directory per job fingerprint, hash-prefixed one level so a
        long-lived trace tree never piles every job into one flat dir.
        The chained phase signatures inside are already collision-free
        across jobs; the per-job directory exists so a job's traces can
        be inspected, sized, or evicted as a unit.
        """
        fp = self.fingerprint()
        return os.path.join(root, fp[:2], fp)

    def with_overrides(self, **config_overrides) -> "JobSpec":
        """A copy whose config applies ``config_overrides`` on top of the
        current config (or on top of ``HyMMConfig()`` if none)."""
        base = self.config if self.config is not None else HyMMConfig()
        return replace(self, config=base.with_overrides(**config_overrides))

    def describe(self) -> str:
        """Short human label for progress lines ("hymm/cora@0.05")."""
        label = f"{self.kind}/{self.dataset}@{self.scale:g}"
        if self.sort_mode is not None:
            label += f" sort={self.sort_mode}"
        if self.config is not None:
            label += " [custom cfg]"
        return label
