"""Generators for the paper's tables."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.area.model import AreaModel
from repro.bench.report import format_table
from repro.bench.workloads import BENCH_DATASETS, bench_scale
from repro.graphs.preprocess import degree_sort
from repro.graphs.registry import get_spec, load_dataset
from repro.hymm.config import HyMMConfig

#: Paper Table III, verbatim, for side-by-side comparison.
PAPER_TABLE3 = {
    "7nm": {"PE Array": 0.006, "DMB": 0.077, "SMQ": 0.008, "LSQ": 0.009,
            "Others": 0.004, "Total": 0.106},
    "40nm": {"PE Array": 0.21, "DMB": 2.39, "SMQ": 0.254, "LSQ": 0.292,
             "Others": 0.129, "Total": 3.215},
}


def table1() -> str:
    """Table I: qualitative comparison of the implemented dataflows.

    One proxy per column of the paper's Table I (report names in
    parentheses), plus the buffer-organisation row that Section III's
    unified-vs-split contrast adds.
    """
    headers = ["", "AWB-GCN (cwp)", "GCNAX (op)", "G-CoD (gcod)",
               "GROW (rwp)", "HyMM (hymm)"]
    rows = [
        ["Aggregation dataflow", "Column-wise product", "Outer product",
         "Outer product", "Row-wise product", "Hybrid (row + outer)"],
        ["Combination dataflow", "Column-wise product", "Outer product",
         "Row-wise product", "Row-wise product", "Row-wise product"],
        ["Compression format", "CSC", "CSC", "CSC (A), CSR (others)",
         "CSR", "CSC (region 1), CSR (others)"],
        ["Graph preprocessing", "None", "None",
         "Partitioning (degree proxy)", "None (proxy)", "Degree sorting"],
        ["Buffer organisation", "Split", "Split", "Split", "Split", "Unified"],
    ]
    return format_table(headers, rows)


def table2(scale: Optional[float] = None, seed: int = 0) -> Dict[str, object]:
    """Table II: dataset statistics + degree-sorting cost.

    Returns ``{"rows": [...], "text": str}``.  Spec columns come from
    the registry (the published numbers); measured columns (actual
    nodes/edges at the bench scale, measured sparsities, sorting
    wall-clock) come from the synthesised instances.
    """
    headers = [
        "dataset", "scale", "nodes", "edges", "adj spars(spec)",
        "adj spars(meas)", "feat spars(spec)", "feat spars(meas)",
        "feat len", "layer dim", "sort ms",
    ]
    rows: List[list] = []
    for name in BENCH_DATASETS:
        spec = get_spec(name)
        s = scale if scale is not None else bench_scale(name)
        ds = load_dataset(name, scale=s, seed=seed)
        sort = degree_sort(ds.adjacency)
        rows.append([
            spec.abbrev, s, ds.n_nodes, ds.n_edges,
            spec.adjacency_sparsity, ds.adjacency_sparsity,
            spec.feature_sparsity, ds.feature_sparsity,
            ds.feature_length, ds.hidden_dim, sort.elapsed_ms,
        ])
    return {"rows": rows, "text": format_table(headers, rows)}


def table3(config: Optional[HyMMConfig] = None) -> Dict[str, object]:
    """Table III: hardware parameters and estimated area, ours vs paper."""
    model = AreaModel(config)
    headers = ["component", "7nm (ours)", "7nm (paper)", "40nm (ours)", "40nm (paper)"]
    r7 = dict(model.report("7nm").rows())
    r40 = dict(model.report("40nm").rows())
    rows = []
    for comp in ["PE Array", "DMB", "SMQ", "LSQ", "Others", "Total"]:
        rows.append([
            comp,
            round(r7[comp], 4), PAPER_TABLE3["7nm"][comp],
            round(r40[comp], 3), PAPER_TABLE3["40nm"][comp],
        ])
    return {"rows": rows, "text": format_table(headers, rows),
            "ours_7nm": r7, "ours_40nm": r40}
