"""Registry thread-safety: hammer instruments from threads and an
event loop and check the totals are exact (no lost updates)."""

import asyncio
import concurrent.futures
import threading

from repro.telemetry.logs import bind_correlation, current_correlation_id
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.prometheus import render_exposition, validate_exposition

THREADS = 8
ITERATIONS = 2_000


class TestThreadedCounters:
    def test_unlabelled_counter_exact_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hammer_total", "hammered")
        start = threading.Barrier(THREADS)

        def worker():
            start.wait()
            for _ in range(ITERATIONS):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == THREADS * ITERATIONS

    def test_labelled_children_exact_per_label(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_hammer_total", "hammered", labelnames=("lane",)
        )
        start = threading.Barrier(THREADS)

        def worker(lane):
            start.wait()
            for _ in range(ITERATIONS):
                # .labels() every iteration: the get-or-create child
                # path must be race-free, not just the increment.
                counter.labels(lane).inc()

        lanes = [str(i % 2) for i in range(THREADS)]
        threads = [
            threading.Thread(target=worker, args=(lane,)) for lane in lanes
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        per_lane = THREADS // 2 * ITERATIONS
        assert counter.labels("0").value == per_lane
        assert counter.labels("1").value == per_lane

    def test_histogram_exact_count_and_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_hammer_ms", "hammered", buckets=(1.0, 2.0, 4.0)
        )
        start = threading.Barrier(THREADS)

        def worker():
            start.wait()
            for i in range(ITERATIONS):
                hist.observe(float(i % 5))

        threads = [threading.Thread(target=worker) for _ in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == THREADS * ITERATIONS
        # sum over i%5 for one worker = ITERATIONS/5 * (0+1+2+3+4)
        assert hist.sum == THREADS * (ITERATIONS // 5) * 10.0
        counts, total, _, observed_max = hist.snapshot()
        assert total == THREADS * ITERATIONS
        assert sum(counts) == total
        assert observed_max == 4.0

    def test_concurrent_get_or_create_single_instrument(self):
        registry = MetricsRegistry()
        seen = []
        start = threading.Barrier(THREADS)

        def worker():
            start.wait()
            c = registry.counter("repro_once_total", "once")
            seen.append(c)
            c.inc()

        threads = [threading.Thread(target=worker) for _ in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)
        assert seen[0].value == THREADS

    def test_render_while_hammering_stays_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_live_total", "live")
        hist = registry.histogram("repro_live_ms", "live", buckets=(1.0, 4.0))
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                counter.inc()
                hist.observe(0.5)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(20):
                # Every mid-flight scrape must be internally consistent
                # (cumulative buckets, count == +Inf bucket).
                validate_exposition(render_exposition(registry))
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert counter.value > 0


class TestEventLoopMix:
    def test_async_tasks_plus_thread_pool_exact_total(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_mixed_total", "mixed", labelnames=("src",)
        )

        def blocking_chunk():
            for _ in range(ITERATIONS):
                counter.labels("thread").inc()

        async def async_chunk():
            for i in range(ITERATIONS):
                counter.labels("loop").inc()
                if i % 256 == 0:
                    await asyncio.sleep(0)

        async def main():
            with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
                loop = asyncio.get_running_loop()
                futures = [
                    loop.run_in_executor(pool, blocking_chunk)
                    for _ in range(4)
                ]
                await asyncio.gather(
                    *futures, *(async_chunk() for _ in range(4))
                )

        asyncio.run(main())
        assert counter.labels("thread").value == 4 * ITERATIONS
        assert counter.labels("loop").value == 4 * ITERATIONS

    def test_correlation_isolated_per_task_while_counting(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_corr_total", "corr")
        leaks = []

        async def job(cid):
            bind_correlation(cid)
            for _ in range(100):
                counter.inc()
                await asyncio.sleep(0)
                if current_correlation_id() != cid:
                    leaks.append((cid, current_correlation_id()))

        async def main():
            await asyncio.gather(*(job(f"{i:016x}") for i in range(8)))

        asyncio.run(main())
        assert leaks == []
        assert counter.value == 8 * 100
