"""HyMM reproduction: a hybrid sparse-dense matrix multiplication
accelerator for GCNs (DATE 2025), rebuilt as a Python library.

Quick start::

    from repro import load_dataset, GCNModel, HyMMAccelerator

    model = GCNModel(load_dataset("cora", scale=0.25))
    result = HyMMAccelerator().run_inference(model)
    print(result.stats.cycles, result.stats.alu_utilization())

Package map
-----------
``repro.sparse``
    COO/CSR/CSC formats, SpMM oracles, degree statistics, region tiling.
``repro.graphs``
    Synthetic Table II datasets, degree sorting, GCN normalisation,
    region planning.
``repro.gcn``
    GCN layers, weights, NumPy reference inference.
``repro.sim``
    The cycle-accounting framework (DRAM, buffer, engine, stats).
``repro.hymm``
    The HyMM accelerator and its hardware units.
``repro.baselines``
    RWP (GROW-proxy), OP (GCNAX-proxy), CWP (AWB-GCN-style) baselines.
``repro.area``
    Analytical Table III area model.
``repro.bench``
    Regenerates every table and figure of the paper.
"""

from repro.graphs import load_dataset, GraphDataset
from repro.gcn import GCNModel, reference_inference
from repro.hymm import HyMMAccelerator, HyMMConfig, RunResult
from repro.baselines import RWPAccelerator, OPAccelerator, CWPAccelerator
from repro.area import AreaModel

__version__ = "1.0.0"

__all__ = [
    "load_dataset",
    "GraphDataset",
    "GCNModel",
    "reference_inference",
    "HyMMAccelerator",
    "HyMMConfig",
    "RunResult",
    "RWPAccelerator",
    "OPAccelerator",
    "CWPAccelerator",
    "AreaModel",
    "__version__",
]
