"""Fixture for the batch-api rule: scalar engine primitives in loops."""

import numpy as np


def bad_kernel(ctx, rows):
    engine = ctx.engine
    for row in rows:
        engine.mac_load(row, "a", "A")  # flagged: scalar load in loop
        ctx.engine.store(row + 1, "out", "OUT")  # flagged: dotted receiver
    i = 0
    while i < len(rows):
        engine.accumulate_store(rows[i], "partial")  # flagged: while loop
        i += 1
    for row in rows:
        if row % 2:
            engine.rmw(row, "out", "OUT")  # flagged: nested in conditional
    for row in rows:
        def spill():
            engine.mac_stream_load(row, "xw", "XW")  # flagged: closure in loop
        spill()


def good_kernel(ctx, rows):
    engine = ctx.engine
    engine.load(rows[0], "a", "A")  # ok: not in a loop
    engine.mac_load_batch(np.asarray(rows), "a", "A")  # ok: batch API
    for row in rows:
        engine.mac_local(1)  # ok: not a per-element memory primitive
        engine.mac_load_batch(np.asarray([row]), "a", "A")  # ok: batch call
        rows.store(row)  # ok: receiver is not an engine
    for row in rows:
        engine.stream(64, "A")  # ok: stream is already aggregate
    for row in rows:
        ctx.engine.load(row, "a", "A")  # analyzer: allow[batch-api]
