"""Fig. 9: dense-matrix-buffer hit rates.

Paper shape: both homogeneous dataflows leave hits on the table; HyMM
achieves the best hit rate by confining request address ranges per
region and merging partials at the buffer.
"""

from repro.bench import figures


def test_fig9_hit_rate(benchmark, emit):
    result = benchmark.pedantic(figures.fig9_hit_rate, rounds=1, iterations=1)
    emit("fig9_hit_rate", result["text"])
    hits = result["hit_rate"]
    datasets = list(hits["hymm"])

    for abbr in datasets:
        for kind in ("op", "rwp", "hymm"):
            assert 0.0 <= hits[kind][abbr] <= 1.0

    # HyMM has the best hit rate on (almost) every dataset.
    wins = sum(
        1
        for d in datasets
        if hits["hymm"][d] >= max(hits["rwp"][d], hits["op"][d]) - 0.02
    )
    assert wins >= len(datasets) - 1
