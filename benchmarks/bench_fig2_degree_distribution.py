"""Fig. 2: graph degree distribution.

Paper's claim: "the top 20% of high-degree nodes account for more than
70% of the total edge count" -- the observation motivating the hybrid
dataflow.
"""

from repro.bench import figures


def test_fig2_degree_distribution(benchmark, emit):
    result = benchmark.pedantic(
        figures.fig2_degree_distribution, rounds=1, iterations=1
    )
    emit("fig2_degree_distribution", result["text"])
    # Every synthesised dataset must reproduce the power-law headline.
    for abbr, share in result["top20_share"].items():
        assert share > 0.55, f"{abbr}: top-20% share {share:.2f} too flat"
    # And most should clear the paper's 70% bar.
    above = sum(1 for s in result["top20_share"].values() if s > 0.7)
    assert above >= len(result["top20_share"]) // 2
