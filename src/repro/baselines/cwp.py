"""Column-wise-product baseline with PE-local accumulators (AWB-GCN-style).

AWB-GCN (Table I) processes the sparse operand column-wise and keeps
partial results in accumulation buffers local to the PEs, rebalancing
work at runtime.  This extension baseline models the dataflow's memory
behaviour without the rebalancing network: partial output rows
accumulate in a bounded PE-local register pool (LRU); when the pool
overflows, the evicted row's running sum is merged into the DMB by a
read-modify-write through the PE array.  With a large enough pool this
approaches an ideal output-stationary engine; with a small pool it
degrades toward the plain outer product.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.gcn.model import GCNModel
from repro.hymm.base import AcceleratorBase
from repro.hymm.config import HyMMConfig
from repro.hymm.kernels import KernelContext, finalize_op_partials
from repro.sim.buffer import CLASS_PARTIAL, CLASS_XW
from repro.sparse import coo_to_csc
from repro.sparse.coo import VALUE_DTYPE


class CWPAccelerator(AcceleratorBase):
    """Column-wise product with a bounded PE-local accumulator pool."""

    name = "cwp"

    def __init__(
        self,
        config: Optional[HyMMConfig] = None,
        local_accumulator_rows: int = 256,
    ) -> None:
        if config is None:
            # Prior-accelerator organisation: split input/output buffers.
            config = HyMMConfig(unified_buffer=False)
        super().__init__(config)
        if local_accumulator_rows <= 0:
            raise ValueError("local_accumulator_rows must be positive")
        self.local_accumulator_rows = local_accumulator_rows

    def prepare(self, model: GCNModel) -> dict:
        prep = super().prepare(model)
        prep["adj_csc"] = coo_to_csc(model.norm_adj)
        return prep

    def run_aggregation(self, ctx: KernelContext, prep: dict, xw: np.ndarray) -> np.ndarray:
        adj_csc = prep["adj_csc"]
        h = xw.shape[1]
        lpr = ctx.config.lines_per_row(h)
        passes = ctx.config.compute_passes(h)
        n = adj_csc.shape[0]
        out = np.zeros((n, h), dtype=np.float64)

        engine = ctx.engine
        xw_base = ctx.amap.xw_addr(ctx.layer, 0, h)
        out_base = ctx.amap.out_addr(ctx.layer, 0, h)
        from repro.hymm.kernels import AGGREGATION_PRIORITY

        ctx.buffer.evict_priority = AGGREGATION_PRIORITY

        # PE-local accumulator pool: output row -> present (LRU order).
        pool: "OrderedDict[int, bool]" = OrderedDict()
        touched = set()
        line_offsets = np.arange(lpr, dtype=np.int64)
        # One dtype conversion per aggregation, sliced per entry.
        values64 = adj_csc.values.astype(np.float64)
        xw64 = xw.astype(np.float64)

        def spill_row(row: int) -> None:
            """Merge an evicted local accumulation into the DMB.

            A PE-local running sum is not a DMB partial line, so --
            unlike the kernels' PE-merge path -- no footprint peak is
            tracked here."""
            engine.merge_rmw_batch(
                out_base + row * lpr + line_offsets,
                CLASS_PARTIAL,
                "partial",
                touched,
                track_peak=False,
            )

        for entry in ctx.smq.iter_csc(adj_csc):
            engine.stream(entry.stream_bytes, "A")
            j = entry.pointer
            # Sequential (ascending-column) dense-row stream.
            engine.mac_stream_load_batch(
                xw_base + j * lpr + line_offsets, CLASS_XW, "XW"
            )
            count = entry.indices.size * max(lpr, passes)
            if count > lpr:
                engine.mac_local(count - lpr)
            for i in entry.indices.tolist():
                if i in pool:
                    pool.move_to_end(i)  # accumulate locally, no traffic
                else:
                    pool[i] = True
                    if len(pool) > self.local_accumulator_rows:
                        victim, _ = pool.popitem(last=False)
                        spill_row(victim)
            np.add.at(
                out,
                entry.indices,
                values64[entry.lo:entry.hi][:, None] * xw64[j][None, :],
            )

        # Drain the pool, then write resident partials back as outputs.
        for row in list(pool):
            spill_row(row)
        pool.clear()
        finalize_op_partials(ctx)
        return out.astype(VALUE_DTYPE)
