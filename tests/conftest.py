"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gcn import GCNModel
from repro.graphs import GraphDataset, load_dataset
from repro.graphs.synthetic import power_law_graph, sparse_feature_matrix
from repro.hymm import HyMMConfig
from repro.sim import DRAM, DRAMConfig, SimStats
from repro.sparse import COOMatrix


@pytest.fixture(autouse=True)
def _isolated_runtime(tmp_path, monkeypatch):
    """Keep the persistent result cache out of the real home directory
    and reset the process-wide runtime defaults after every test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "hymm-cache"))
    yield
    from repro.bench import runner

    runner.configure_runtime(n_jobs=1, disk_cache=False)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_coo():
    """A fixed 4x5 sparse matrix with known structure."""
    dense = np.array(
        [
            [1.0, 0.0, 2.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 3.0, 0.0],
            [4.0, 5.0, 0.0, 0.0, 6.0],
            [0.0, 0.0, 0.0, 0.0, 0.0],
        ],
        dtype=np.float32,
    )
    return COOMatrix.from_dense(dense)


@pytest.fixture
def small_graph():
    """A deterministic 64-node power-law graph."""
    return power_law_graph(64, 256, seed=7)


@pytest.fixture
def tiny_dataset():
    """A very small dataset for fast end-to-end runs."""
    adjacency = power_law_graph(48, 192, seed=3)
    features = sparse_feature_matrix(48, 32, density=0.2, seed=4)
    return GraphDataset("tiny", adjacency, features, hidden_dim=16)


@pytest.fixture
def cora_small():
    """A scaled-down Cora instance (deterministic)."""
    return load_dataset("cora", scale=0.05, seed=0)


@pytest.fixture
def tiny_model(tiny_dataset):
    return GCNModel(tiny_dataset, n_layers=1, seed=9)


@pytest.fixture
def config():
    return HyMMConfig()


@pytest.fixture
def stats():
    return SimStats()


@pytest.fixture
def dram(stats):
    return DRAM(DRAMConfig(), stats)
