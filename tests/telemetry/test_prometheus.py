"""Prometheus text exposition: render <-> validate round trip, and the
validator against hand-broken payloads."""

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.prometheus import (
    ExpositionError,
    render_exposition,
    validate_exposition,
)


@pytest.fixture()
def registry():
    r = MetricsRegistry()
    c = r.counter("repro_jobs_total", "Jobs", labelnames=("status",))
    c.labels("done").inc(3)
    c.labels("failed").inc()
    r.gauge("repro_queue_depth", "Depth").set(2)
    h = r.histogram("repro_hitpath_ms", "Hit path", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 9.0):
        h.observe(v)
    return r


class TestRender:
    def test_roundtrip_validates(self, registry):
        text = render_exposition(registry)
        stats = validate_exposition(text)
        assert stats["families"] == 3
        # 2 counter samples + 1 gauge + (3+1 buckets + sum + count).
        assert stats["samples"] == 9

    def test_histogram_series_shape(self, registry):
        text = render_exposition(registry)
        assert 'repro_hitpath_ms_bucket{le="1"} 1' in text
        assert 'repro_hitpath_ms_bucket{le="2"} 2' in text
        assert 'repro_hitpath_ms_bucket{le="4"} 2' in text
        assert 'repro_hitpath_ms_bucket{le="+Inf"} 3' in text
        assert "repro_hitpath_ms_count 3" in text
        assert "repro_hitpath_ms_sum 11" in text

    def test_help_and_type_precede_samples(self, registry):
        lines = render_exposition(registry).splitlines()
        first = lines.index("# HELP repro_hitpath_ms Hit path")
        assert lines[first + 1] == "# TYPE repro_hitpath_ms histogram"

    def test_labelled_counter_samples(self, registry):
        text = render_exposition(registry)
        assert 'repro_jobs_total{status="done"} 3' in text
        assert 'repro_jobs_total{status="failed"} 1' in text

    def test_multi_registry_dedupe_first_wins(self, registry):
        other = MetricsRegistry()
        other.gauge("repro_queue_depth", "Depth").set(99)
        other.counter("repro_only_here_total", "Other").inc()
        text = render_exposition(registry, other)
        assert "repro_queue_depth 2" in text
        assert "repro_queue_depth 99" not in text
        assert "repro_only_here_total 1" in text
        validate_exposition(text)

    def test_empty_registry_renders_empty(self):
        assert render_exposition(MetricsRegistry()) == ""
        assert validate_exposition("") == {"families": 0, "samples": 0}

    def test_label_value_escaping(self):
        r = MetricsRegistry()
        c = r.counter("repro_esc_total", "Esc", labelnames=("k",))
        c.labels('a"b\\c\nd').inc()
        text = render_exposition(r)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        validate_exposition(text)


class TestValidator:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ExpositionError, match="no preceding TYPE"):
            validate_exposition("repro_x_total 1\n")

    def test_duplicate_help_rejected(self):
        text = (
            "# HELP repro_x_total a\n"
            "# HELP repro_x_total b\n"
            "# TYPE repro_x_total counter\n"
            "repro_x_total 1\n"
        )
        with pytest.raises(ExpositionError, match="duplicate HELP"):
            validate_exposition(text)

    def test_interleaved_families_rejected(self):
        text = (
            "# TYPE repro_a_total counter\n"
            "repro_a_total 1\n"
            "# TYPE repro_b_total counter\n"
            "repro_b_total 1\n"
            "repro_a_total 2\n"
        )
        with pytest.raises(ExpositionError, match="interleaved"):
            validate_exposition(text)

    def test_non_cumulative_buckets_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_count 5\n"
        )
        with pytest.raises(ExpositionError, match="not cumulative"):
            validate_exposition(text)

    def test_missing_inf_bucket_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            "repro_h_count 5\n"
        )
        with pytest.raises(ExpositionError, match=r"missing le=\"\+Inf\""):
            validate_exposition(text)

    def test_count_bucket_mismatch_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_count 4\n"
        )
        with pytest.raises(ExpositionError, match="!= \\+Inf bucket"):
            validate_exposition(text)

    def test_negative_counter_rejected(self):
        text = "# TYPE repro_x_total counter\nrepro_x_total -1\n"
        with pytest.raises(ExpositionError, match="negative"):
            validate_exposition(text)

    def test_unparsable_value_rejected(self):
        text = "# TYPE repro_x_total counter\nrepro_x_total banana\n"
        with pytest.raises(ExpositionError, match="unparsable sample value"):
            validate_exposition(text)

    def test_malformed_labels_rejected(self):
        text = "# TYPE repro_x_total counter\nrepro_x_total{oops} 1\n"
        with pytest.raises(ExpositionError, match="malformed labels"):
            validate_exposition(text)

    def test_special_values_accepted(self):
        text = (
            "# TYPE repro_g gauge\n"
            "repro_g +Inf\n"
            "# TYPE repro_g2 gauge\n"
            "repro_g2 NaN\n"
        )
        assert validate_exposition(text)["samples"] == 2

    def test_error_carries_line_number(self):
        try:
            validate_exposition("# TYPE repro_x_total counter\nboom{ 1\n")
        except ExpositionError as exc:
            assert exc.lineno == 2
            assert "line 2" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected ExpositionError")


class TestCli:
    def test_validate_file_ok(self, tmp_path, capsys, registry):
        from repro.telemetry.cli import main

        path = tmp_path / "metrics.prom"
        path.write_text(render_exposition(registry), encoding="utf-8")
        assert main(["validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok: families=3 samples=9" in out

    def test_validate_rejects_bad_file(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        path = tmp_path / "bad.prom"
        path.write_text("repro_x_total 1\n", encoding="utf-8")
        assert main(["validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_validate_stdin_and_min_samples(self, monkeypatch, capsys, registry):
        import io

        from repro.telemetry.cli import main

        monkeypatch.setattr(
            "sys.stdin", io.StringIO(render_exposition(registry))
        )
        assert main(["validate", "-", "--min-samples", "100"]) == 1
        assert "only 9 samples" in capsys.readouterr().err
