"""Parallel execution must be bit-identical to serial execution.

The acceptance bar for the runtime: ``n_jobs=4`` produces the same
``RunResult``s -- outputs, cycle counts, every counter -- as in-process
serial execution.  Wall-clock fields (``wall_seconds`` and the measured
``sort_ms``) are the only legitimate differences.
"""

import numpy as np
import pytest

from repro.runtime import JobSpec, SweepExecutor

_SPECS = [
    JobSpec(dataset="cora", kind="op", scale=0.05),
    JobSpec(dataset="cora", kind="rwp", scale=0.05),
    JobSpec(dataset="cora", kind="hymm", scale=0.05),
    JobSpec(dataset="amazon-photo", kind="hymm", scale=0.03),
]


def _comparable(result):
    """The serialised form minus measured wall-clock timings."""
    data = result.to_dict()
    data.pop("wall_seconds")
    data.pop("sort_ms")
    data["extra"] = {
        k: v for k, v in data["extra"].items() if k != "sort_ms"
    }
    return data


@pytest.fixture(scope="module")
def serial():
    return SweepExecutor(n_jobs=1).run(_SPECS)


@pytest.fixture(scope="module")
def parallel():
    return SweepExecutor(n_jobs=4).run(_SPECS)


def test_both_complete(serial, parallel):
    assert serial.manifest.executed == len(_SPECS)
    assert parallel.manifest.executed == len(_SPECS)
    assert parallel.manifest.failed == 0


@pytest.mark.parametrize("index", range(len(_SPECS)))
def test_bit_identical_results(serial, parallel, index):
    spec = _SPECS[index]
    ours = serial.for_spec(spec)
    theirs = parallel.for_spec(spec)
    # Outputs: exact, element for element, dtype for dtype.
    assert len(ours.outputs) == len(theirs.outputs)
    for a, b in zip(ours.outputs, theirs.outputs):
        assert a.dtype == b.dtype
        assert np.array_equal(a, b)
    # Everything else (stats, phases, config) via the wire form.
    assert _comparable(ours) == _comparable(theirs)


def test_progress_callback_fires(serial):
    events = []

    def progress(record, done, total):
        events.append((record.status, done, total))

    SweepExecutor(n_jobs=1, progress=progress).run(_SPECS[:2])
    assert len(events) == 2
    assert events[-1][1:] == (2, 2)
