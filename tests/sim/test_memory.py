"""DRAM model: bandwidth occupancy, latency, posted writes, streams."""

import pytest

from repro.sim import DRAM, DRAMConfig, SimStats


@pytest.fixture
def fast_dram(stats):
    return DRAM(DRAMConfig(bytes_per_cycle=64, latency_cycles=100), stats)


class TestRead:
    def test_latency_added(self, fast_dram):
        done = fast_dram.read(0, 64, "A")
        assert done == pytest.approx(1 + 100)

    def test_bandwidth_occupancy(self, fast_dram):
        done = fast_dram.read(0, 640, "A")
        assert done == pytest.approx(10 + 100)

    def test_back_to_back_reads_queue(self, fast_dram):
        fast_dram.read(0, 64, "A")
        second = fast_dram.read(0, 64, "A")
        assert second == pytest.approx(2 + 100)

    def test_idle_gap_respected(self, fast_dram):
        fast_dram.read(0, 64, "A")
        second = fast_dram.read(500, 64, "A")
        assert second == pytest.approx(501 + 100)

    def test_bytes_counted_by_tag(self, fast_dram, stats):
        fast_dram.read(0, 64, "A")
        fast_dram.read(0, 128, "XW")
        assert stats.dram_read_bytes["A"] == 64
        assert stats.dram_read_bytes["XW"] == 128

    def test_zero_bytes_noop(self, fast_dram, stats):
        assert fast_dram.read(5, 0, "A") == 5
        assert stats.dram_read_bytes["A"] == 0


class TestWrite:
    def test_posted_no_latency(self, fast_dram):
        done = fast_dram.write(0, 64, "AXW")
        assert done == pytest.approx(1)

    def test_contends_with_reads(self, fast_dram):
        fast_dram.write(0, 6400, "AXW")  # 100 cycles of channel
        read_done = fast_dram.read(0, 64, "A")
        assert read_done == pytest.approx(100 + 1 + 100)

    def test_bytes_counted(self, fast_dram, stats):
        fast_dram.write(0, 192, "AXW")
        assert stats.dram_write_bytes["AXW"] == 192


class TestStream:
    def test_no_latency(self, fast_dram):
        assert fast_dram.stream_read(0, 64, "A") == pytest.approx(1)

    def test_counts_as_read_traffic(self, fast_dram, stats):
        fast_dram.stream_read(0, 256, "A")
        assert stats.dram_read_bytes["A"] == 256

    def test_busy_until_tracks_channel(self, fast_dram):
        fast_dram.stream_read(0, 640, "A")
        assert fast_dram.busy_until == pytest.approx(10)


class TestConfig:
    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            DRAMConfig(bytes_per_cycle=0)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            DRAMConfig(latency_cycles=-1)

    def test_paper_defaults(self):
        cfg = DRAMConfig()
        assert cfg.bytes_per_cycle == 64.0  # 64 GB/s at 1 GHz
        assert cfg.latency_cycles == 100
