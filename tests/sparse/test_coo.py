"""Unit tests for the COO container."""

import numpy as np
import pytest

from repro.sparse import COOMatrix
from repro.sparse.coo import INDEX_BYTES, VALUE_BYTES


class TestConstruction:
    def test_from_dense_extracts_all_nonzeros(self, small_coo):
        assert small_coo.nnz == 6

    def test_shape_preserved(self, small_coo):
        assert small_coo.shape == (4, 5)

    def test_empty_matrix(self):
        m = COOMatrix.empty((3, 7))
        assert m.nnz == 0
        assert m.shape == (3, 7)
        assert np.array_equal(m.to_dense(), np.zeros((3, 7)))

    def test_canonical_row_major_order(self):
        m = COOMatrix((3, 3), [2, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
        assert m.rows.tolist() == [0, 1, 2]
        assert m.cols.tolist() == [2, 1, 0]

    def test_duplicates_are_summed(self):
        m = COOMatrix((2, 2), [0, 0, 1], [1, 1, 0], [1.0, 2.5, 4.0])
        assert m.nnz == 2
        dense = m.to_dense()
        assert dense[0, 1] == pytest.approx(3.5)
        assert dense[1, 0] == pytest.approx(4.0)

    def test_duplicates_summed_across_many(self):
        m = COOMatrix((1, 1), [0] * 10, [0] * 10, [1.0] * 10)
        assert m.nnz == 1
        assert m.values[0] == pytest.approx(10.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="identical shapes"):
            COOMatrix((2, 2), [0, 1], [0], [1.0])

    def test_row_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="row index"):
            COOMatrix((2, 2), [2], [0], [1.0])

    def test_negative_row_rejected(self):
        with pytest.raises(ValueError, match="row index"):
            COOMatrix((2, 2), [-1], [0], [1.0])

    def test_col_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="column index"):
            COOMatrix((2, 2), [0], [5], [1.0])

    def test_two_dimensional_triplets_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            COOMatrix((2, 2), [[0]], [[0]], [[1.0]])

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError, match="two-dimensional"):
            COOMatrix.from_dense(np.ones(4))

    def test_values_cast_to_float32(self, small_coo):
        assert small_coo.values.dtype == np.float32


class TestProperties:
    def test_density(self, small_coo):
        assert small_coo.density == pytest.approx(6 / 20)

    def test_density_empty_shape(self):
        m = COOMatrix.empty((0, 5))
        assert m.density == 0.0

    def test_storage_bytes(self, small_coo):
        assert small_coo.storage_bytes() == 6 * (2 * INDEX_BYTES + VALUE_BYTES)

    def test_dense_roundtrip(self, small_coo):
        again = COOMatrix.from_dense(small_coo.to_dense())
        assert small_coo.allclose(again)

    def test_repr_mentions_shape_and_nnz(self, small_coo):
        assert "shape=(4, 5)" in repr(small_coo)
        assert "nnz=6" in repr(small_coo)


class TestDegrees:
    def test_row_degrees(self, small_coo):
        assert small_coo.row_degrees().tolist() == [2, 1, 3, 0]

    def test_col_degrees(self, small_coo):
        assert small_coo.col_degrees().tolist() == [2, 1, 1, 1, 1]

    def test_degrees_sum_to_nnz(self, small_graph):
        assert small_graph.row_degrees().sum() == small_graph.nnz
        assert small_graph.col_degrees().sum() == small_graph.nnz


class TestTransforms:
    def test_transpose_shape(self, small_coo):
        assert small_coo.transpose().shape == (5, 4)

    def test_transpose_values(self, small_coo):
        np.testing.assert_allclose(
            small_coo.transpose().to_dense(), small_coo.to_dense().T
        )

    def test_double_transpose_identity(self, small_coo):
        assert small_coo.transpose().transpose().allclose(small_coo)

    def test_permute_rows(self, small_coo):
        perm = np.array([3, 2, 1, 0])
        permuted = small_coo.permute(row_perm=perm)
        dense = small_coo.to_dense()
        np.testing.assert_allclose(permuted.to_dense(), dense[::-1])

    def test_permute_both_axes_preserves_nnz(self, small_graph):
        n = small_graph.shape[0]
        perm = np.random.default_rng(0).permutation(n)
        permuted = small_graph.permute(row_perm=perm, col_perm=perm)
        assert permuted.nnz == small_graph.nnz

    def test_permute_identity_is_noop(self, small_coo):
        ident = np.arange(small_coo.shape[0])
        assert small_coo.permute(row_perm=ident).allclose(small_coo)

    def test_submatrix_values(self, small_coo):
        block = small_coo.submatrix(0, 2, 0, 3)
        np.testing.assert_allclose(block.to_dense(), small_coo.to_dense()[:2, :3])

    def test_submatrix_rebased_indices(self, small_coo):
        block = small_coo.submatrix(2, 4, 1, 5)
        np.testing.assert_allclose(block.to_dense(), small_coo.to_dense()[2:4, 1:5])

    def test_submatrix_full_is_identity(self, small_coo):
        block = small_coo.submatrix(0, 4, 0, 5)
        assert block.allclose(small_coo)

    def test_submatrix_empty_range(self, small_coo):
        block = small_coo.submatrix(1, 1, 0, 5)
        assert block.nnz == 0
        assert block.shape == (0, 5)

    def test_submatrix_bad_row_range(self, small_coo):
        with pytest.raises(ValueError, match="row range"):
            small_coo.submatrix(3, 2, 0, 5)

    def test_submatrix_bad_col_range(self, small_coo):
        with pytest.raises(ValueError, match="col range"):
            small_coo.submatrix(0, 2, 0, 9)


class TestComparison:
    def test_allclose_self(self, small_coo):
        assert small_coo.allclose(small_coo)

    def test_allclose_different_shape(self, small_coo):
        other = COOMatrix.empty((4, 6))
        assert not small_coo.allclose(other)

    def test_allclose_different_nnz(self, small_coo):
        other = COOMatrix.empty((4, 5))
        assert not small_coo.allclose(other)

    def test_allclose_value_tolerance(self, small_coo):
        jittered = COOMatrix(
            small_coo.shape,
            small_coo.rows.copy(),
            small_coo.cols.copy(),
            small_coo.values + 1e-7,
        )
        assert small_coo.allclose(jittered)

    def test_allclose_detects_value_change(self, small_coo):
        changed = COOMatrix(
            small_coo.shape,
            small_coo.rows.copy(),
            small_coo.cols.copy(),
            small_coo.values + 1.0,
        )
        assert not small_coo.allclose(changed)
