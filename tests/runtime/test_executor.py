"""SweepExecutor: serial fallback, pool execution, timeout, retry.

Custom runners injected here must be module-level (picklable) because
the pool ships them to worker processes.
"""

import functools
import pathlib
import time

import pytest

from repro.runtime import JobSpec, ResultCache, SweepExecutor, execute_spec
from repro.runtime.manifest import STATUS_CACHE_HIT, STATUS_DONE, STATUS_FAILED


def _spec(kind="rwp", **kw):
    base = dict(dataset="cora", kind=kind, scale=0.05)
    base.update(kw)
    return JobSpec(**base)


# ----------------------------------------------------------------------
# Injectable runners (top-level for pickling)
# ----------------------------------------------------------------------
def ok_runner(spec):
    return f"ok:{spec.kind}:{spec.seed}"


def failing_runner(spec):
    raise RuntimeError("synthetic worker failure")


def slow_runner(spec):
    time.sleep(2.0)
    return "too late"


def flaky_runner(marker_dir, spec):
    """Fails the first time each fingerprint is attempted, succeeds
    after -- the marker file carries state across processes."""
    marker = pathlib.Path(marker_dir) / spec.fingerprint()
    if not marker.exists():
        marker.write_text("attempted")
        raise RuntimeError("first attempt always fails")
    return f"recovered:{spec.kind}"


# ----------------------------------------------------------------------
class TestSerial:
    def test_serial_executes_real_job(self):
        sweep = SweepExecutor(n_jobs=1).run([_spec()])
        result = sweep.for_spec(_spec())
        assert result is not None
        assert result.stats.cycles > 0
        assert sweep.manifest.executed == 1
        assert sweep.manifest.records[0].worker == "serial"

    def test_serial_matches_direct_execution(self):
        direct = execute_spec(_spec())
        via_executor = SweepExecutor(n_jobs=1).run([_spec()]).for_spec(_spec())
        assert via_executor.stats.cycles == direct.stats.cycles

    def test_duplicates_collapse(self):
        sweep = SweepExecutor(n_jobs=1, runner=ok_runner).run(
            [_spec(), _spec(), _spec(kind="op")]
        )
        assert sweep.manifest.total == 2
        assert len(sweep.results) == 2

    def test_serial_retry_then_fail(self):
        sweep = SweepExecutor(n_jobs=1, runner=failing_runner, retries=2).run(
            [_spec()]
        )
        record = sweep.manifest.records[0]
        assert record.status == STATUS_FAILED
        assert record.attempts == 3
        assert "synthetic worker failure" in record.error
        assert sweep.for_spec(_spec()) is None

    def test_serial_flaky_recovers(self, tmp_path):
        runner = functools.partial(flaky_runner, str(tmp_path))
        sweep = SweepExecutor(n_jobs=1, runner=runner, retries=1).run([_spec()])
        assert sweep.manifest.executed == 1
        assert sweep.manifest.records[0].attempts == 2
        assert sweep.results[_spec().fingerprint()] == "recovered:rwp"


class TestPool:
    def test_pool_runs_all_jobs(self):
        specs = [_spec(seed=i) for i in range(4)]
        sweep = SweepExecutor(n_jobs=2, runner=ok_runner).run(specs)
        assert sweep.manifest.executed == 4
        assert {r.worker for r in sweep.manifest.records} == {"pool"}
        for spec in specs:
            assert sweep.for_spec(spec) == f"ok:rwp:{spec.seed}"

    def test_pool_executes_real_simulation(self):
        sweep = SweepExecutor(n_jobs=2).run([_spec(), _spec(kind="op")])
        assert sweep.manifest.executed == 2
        for spec in (_spec(), _spec(kind="op")):
            assert sweep.for_spec(spec).stats.cycles > 0

    def test_pool_failure_after_retries(self):
        sweep = SweepExecutor(n_jobs=2, runner=failing_runner, retries=1).run(
            [_spec()]
        )
        record = sweep.manifest.records[0]
        assert record.status == STATUS_FAILED
        assert record.attempts == 2
        assert "synthetic worker failure" in record.error

    def test_pool_flaky_recovers(self, tmp_path):
        runner = functools.partial(flaky_runner, str(tmp_path))
        specs = [_spec(seed=i) for i in range(3)]
        sweep = SweepExecutor(n_jobs=2, runner=runner, retries=1).run(specs)
        assert sweep.manifest.executed == 3
        assert sweep.manifest.failed == 0

    def test_timeout_fails_job(self):
        start = time.monotonic()
        sweep = SweepExecutor(
            n_jobs=2, runner=slow_runner, timeout=0.3, retries=0
        ).run([_spec()])
        elapsed = time.monotonic() - start
        record = sweep.manifest.records[0]
        assert record.status == STATUS_FAILED
        assert "timed out" in record.error
        assert elapsed < 1.9  # did not wait for the 2s sleep

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            SweepExecutor(timeout=0)
        with pytest.raises(ValueError):
            SweepExecutor(retries=-1)


class TestCacheIntegration:
    def test_second_sweep_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [_spec(), _spec(kind="op")]
        first = SweepExecutor(n_jobs=1, cache=cache).run(specs)
        assert first.manifest.executed == 2
        second = SweepExecutor(n_jobs=1, cache=cache).run(specs)
        assert second.manifest.cache_hits == 2
        assert second.manifest.executed == 0
        assert second.manifest.hit_rate == 1.0
        assert {r.status for r in second.manifest.records} == {STATUS_CACHE_HIT}
        for spec in specs:
            assert second.for_spec(spec).stats.cycles == (
                first.for_spec(spec).stats.cycles
            )

    def test_manifest_reports_cache_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep = SweepExecutor(n_jobs=1, cache=cache).run([_spec()])
        assert sweep.manifest.cache_stats["stores"] == 1
        assert sweep.manifest.cache_stats["misses"] == 1

    def test_manifest_serialises(self, tmp_path):
        import json

        cache = ResultCache(tmp_path)
        sweep = SweepExecutor(n_jobs=1, cache=cache).run([_spec()])
        payload = json.dumps(sweep.manifest.to_dict())
        assert _spec().fingerprint() in payload

    def test_summary_mentions_counts(self):
        sweep = SweepExecutor(n_jobs=1, runner=ok_runner).run([_spec()])
        text = sweep.manifest.summary()
        assert "1 job" in text and "1 simulated" in text


class TestManifestStatuses:
    def test_mixed_outcomes(self, tmp_path):
        cache = ResultCache(tmp_path)
        ok = _spec()
        SweepExecutor(n_jobs=1, cache=cache).run([ok])  # warm one entry
        sweep = SweepExecutor(n_jobs=1, cache=cache).run(
            [ok, _spec(kind="op")]
        )
        statuses = {r.status for r in sweep.manifest.records}
        assert statuses == {STATUS_CACHE_HIT, STATUS_DONE}


class TestTelemetry:
    def test_serial_records_rss(self):
        sweep = SweepExecutor(n_jobs=1, runner=ok_runner).run([_spec()])
        record = sweep.manifest.records[0]
        assert record.max_rss_kb is not None
        assert record.max_rss_kb > 0
        assert record.timed_out is False

    def test_pool_records_worker_rss(self):
        sweep = SweepExecutor(n_jobs=2, runner=ok_runner).run(
            [_spec(seed=i) for i in range(2)]
        )
        for record in sweep.manifest.records:
            assert record.max_rss_kb is not None
            assert record.max_rss_kb > 0

    def test_timeout_sets_timed_out_flag(self):
        sweep = SweepExecutor(
            n_jobs=2, runner=slow_runner, timeout=0.3, retries=0
        ).run([_spec()])
        record = sweep.manifest.records[0]
        assert record.timed_out is True
        assert sweep.manifest.timeouts == 1

    def test_manifest_dict_carries_telemetry(self):
        sweep = SweepExecutor(n_jobs=1, runner=ok_runner).run([_spec()])
        payload = sweep.manifest.to_dict()
        assert payload["timeouts"] == 0
        assert payload["retries"] == 0
        assert payload["peak_rss_kb"] == sweep.manifest.peak_rss_kb
        assert "summary" in payload
        assert payload["cache_hits"] == 0
        assert payload["cache_misses"] == 1
        job = payload["jobs"][0]
        assert job["max_rss_kb"] == sweep.manifest.records[0].max_rss_kb
        assert job["timed_out"] is False

    def test_retries_counted(self, tmp_path):
        runner = functools.partial(flaky_runner, str(tmp_path))
        sweep = SweepExecutor(n_jobs=1, runner=runner, retries=1).run([_spec()])
        assert sweep.manifest.retries == 1
