"""Region planning (the Section IV-E tiling rules)."""

import pytest

from repro.graphs.partition import (
    dmb_resident_rows,
    plan_regions,
    tiling_threshold,
)
from repro.graphs.preprocess import degree_sort
from repro.graphs.synthetic import power_law_graph


@pytest.fixture
def sorted_graph():
    return degree_sort(power_law_graph(200, 1600, seed=4)).matrix


class TestThreshold:
    def test_default_twenty_percent(self):
        assert tiling_threshold(1000) == 200

    def test_rounding(self):
        assert tiling_threshold(14) == 3  # 2.8 rounds to 3

    def test_minimum_one(self):
        assert tiling_threshold(2) == 1

    def test_empty_graph(self):
        assert tiling_threshold(0) == 0

    def test_custom_fraction(self):
        assert tiling_threshold(1000, fraction=0.5) == 500

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            tiling_threshold(10, fraction=0.0)


class TestResidentRows:
    def test_counts_vectors(self):
        # 256 KB at 75% residency, 64-byte vectors -> 3072 rows.
        assert dmb_resident_rows(256 * 1024, 16) == 3072

    def test_full_residency(self):
        assert dmb_resident_rows(256 * 1024, 16, resident_fraction=1.0) == 4096

    def test_wide_rows_fewer(self):
        narrow = dmb_resident_rows(256 * 1024, 16)
        wide = dmb_resident_rows(256 * 1024, 64)
        assert wide == narrow // 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            dmb_resident_rows(0, 16)


class TestPlan:
    def test_default_threshold(self, sorted_graph):
        plan = plan_regions(sorted_graph, 16, 256 * 1024)
        assert plan.threshold == 40  # 20% of 200

    def test_single_tile_when_band_fits(self, sorted_graph):
        plan = plan_regions(sorted_graph, 16, 256 * 1024)
        assert plan.n_region1_tiles == 1
        assert plan.band == plan.threshold

    def test_banding_under_small_buffer(self, sorted_graph):
        # A 1 KB DMB holds 12 resident vectors at 75%.
        plan = plan_regions(sorted_graph, 16, 1024)
        assert plan.band == 12
        assert plan.n_region1_tiles > 1

    def test_nnz_conserved(self, sorted_graph):
        plan = plan_regions(sorted_graph, 16, 2048)
        assert plan.tiled.nnz == sorted_graph.nnz

    def test_explicit_threshold_override(self, sorted_graph):
        plan = plan_regions(sorted_graph, 16, 256 * 1024, threshold=10)
        assert plan.threshold == 10

    def test_threshold_clamped_to_n(self, sorted_graph):
        plan = plan_regions(sorted_graph, 16, 256 * 1024, threshold=10_000)
        assert plan.threshold == 200

    def test_high_degree_band_covers_most_edges(self, sorted_graph):
        """The point of the tiling: region 1 owns the bulk of non-zeros."""
        plan = plan_regions(sorted_graph, 16, 256 * 1024)
        r1_nnz = sum(t.nnz for t in plan.tiled.tiles_in_region(1))
        assert r1_nnz / sorted_graph.nnz > 0.4
