"""Processing engine array -- paper Section IV-C.

The PE array is 16 single-precision MAC units operating in lock-step on
one 64-byte vector per cycle.  Timing lives in
:class:`repro.sim.engine.AccessExecuteEngine`; this module provides the
*functional* datapath (the actual arithmetic, so every simulation also
produces the numerically correct result matrix) and the stationary
buffer bookkeeping:

* **RWP mode** is output-stationary: the accumulating output row sits in
  the PE stationary buffers while scalars from the sparse row stream by.
* **OP mode** is input-stationary: the dense row of the current sparse
  column sits in the stationary buffers while partial products stream
  out toward the DMB accumulator.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import VALUE_DTYPE


class PEArray:
    """Functional model of the 16-MAC PE array."""

    def __init__(self, n_pes: int = 16) -> None:
        if n_pes <= 0:
            raise ValueError("n_pes must be positive")
        self.n_pes = n_pes

    def vector_ops_for_width(self, width: int) -> int:
        """Array passes needed for a ``width``-element row (1 for h=16)."""
        if width <= 0:
            raise ValueError("width must be positive")
        return -(-width // self.n_pes)

    def lane_utilization(self, width: int) -> float:
        """Fraction of MAC lanes active for rows of the given width."""
        passes = self.vector_ops_for_width(width)
        return width / (passes * self.n_pes)

    # ------------------------------------------------------------------
    # Functional datapaths
    # ------------------------------------------------------------------
    @staticmethod
    def rwp_row(values: np.ndarray, dense_rows: np.ndarray) -> np.ndarray:
        """Output-stationary accumulation of one sparse row.

        ``values`` are the row's non-zero scalars, ``dense_rows`` the
        matching dense rows (``nnz x width``); returns the finished
        output row.
        """
        if values.size == 0:
            return np.zeros(dense_rows.shape[1] if dense_rows.ndim == 2 else 0,
                            dtype=VALUE_DTYPE)
        return (values.astype(VALUE_DTYPE) @ dense_rows.astype(VALUE_DTYPE)).astype(
            VALUE_DTYPE
        )

    @staticmethod
    def op_column(values: np.ndarray, dense_row: np.ndarray) -> np.ndarray:
        """Input-stationary partial products of one sparse column.

        Returns an ``nnz x width`` block of partial outputs, one per
        non-zero, each destined for the output row the non-zero names.
        """
        return (
            values.astype(VALUE_DTYPE)[:, None] * dense_row.astype(VALUE_DTYPE)[None, :]
        ).astype(VALUE_DTYPE)
