"""Fixture: stats-conservation violations.

A mini ``SimStats`` with one never-written counter, plus writers that
use an undeclared literal traffic tag.  Loaded under a module name in
``repro.sim`` so the scope matches; never imported, only parsed.
"""
from collections import Counter
from dataclasses import dataclass, field

TRAFFIC_TAGS = ("A", "W")


@dataclass
class SimStats:
    cycles: int = 0
    busy_cycles: int = 0
    ghost_counter: int = 0             # line 17: never written anywhere
    dram_read_bytes: Counter = field(default_factory=Counter)

    def merge(self, other):
        # Bulk copy: writes here must NOT count, or the rule is vacuous.
        self.cycles += other.cycles
        self.busy_cycles += other.busy_cycles
        self.ghost_counter += other.ghost_counter
        self.dram_read_bytes.update(other.dram_read_bytes)


class Engine:
    def __init__(self, stats):
        self.stats = stats

    def step(self):
        self.stats.cycles = 10
        self.stats.busy_cycles += 1
        self.stats.dram_read_bytes["A"] += 64        # declared tag: fine
        self.stats.dram_read_bytes["bogus"] += 64    # line 36: undeclared tag

    def request(self, engine):
        engine.issue(addr=0, tag="W")                # declared tag: fine
        engine.issue(addr=0, tag="phantom")          # line 40: undeclared tag
