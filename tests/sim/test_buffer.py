"""CacheBuffer: hits/misses, priority-LRU eviction, MSHRs, accumulator."""

import pytest

from repro.sim import (
    CLASS_OUT,
    CLASS_PARTIAL,
    CLASS_W,
    CLASS_XW,
    CacheBuffer,
    DRAM,
    DRAMConfig,
    SimStats,
)


def make_buffer(stats, capacity=4, mshr=2, lru=True, latency=100):
    dram = DRAM(DRAMConfig(latency_cycles=latency), stats)
    buf = CacheBuffer(
        capacity_lines=capacity,
        line_bytes=64,
        dram=dram,
        stats=stats,
        mshr_entries=mshr,
        lru=lru,
    )
    return buf, dram


class TestReadWrite:
    def test_cold_miss_then_hit(self, stats):
        buf, _ = make_buffer(stats)
        ready, _ = buf.read(0, 1, CLASS_XW, "XW")
        assert ready > 100  # paid DRAM latency
        ready2, _ = buf.read(ready, 1, CLASS_XW, "XW")
        assert ready2 == pytest.approx(ready + 1)
        assert stats.buffer_misses["XW"] == 1
        assert stats.buffer_hits["XW"] == 1

    def test_second_access_to_inflight_line_merges(self, stats):
        buf, _ = make_buffer(stats)
        r1, _ = buf.read(0, 1, CLASS_XW, "XW")
        r2, _ = buf.read(1, 1, CLASS_XW, "XW")  # same line, still in flight
        # Hit-under-miss: no duplicate fetch, and the second request
        # cannot complete before the data actually arrives.
        assert r2 >= r1
        assert stats.dram_read_bytes["XW"] == 64  # one fetch only
        assert stats.buffer_misses["XW"] == 1
        assert stats.buffer_hits["XW"] == 1

    def test_write_allocate(self, stats):
        buf, _ = make_buffer(stats)
        buf.write(0, 7, CLASS_XW, "XW")
        assert buf.contains(7)
        assert stats.buffer_misses["XW"] == 1

    def test_write_through_no_allocate(self, stats):
        buf, dram = make_buffer(stats)
        buf.write(0, 7, CLASS_OUT, "AXW", allocate=False)
        assert not buf.contains(7)
        assert stats.dram_write_bytes["AXW"] == 64

    def test_write_hit_marks_dirty(self, stats):
        buf, _ = make_buffer(stats)
        buf.write(0, 7, CLASS_XW, "XW")
        buf.write(1, 7, CLASS_XW, "XW")
        assert stats.buffer_hits["XW"] == 1

    def test_read_after_write_hits(self, stats):
        buf, _ = make_buffer(stats)
        buf.write(0, 7, CLASS_XW, "XW")
        ready, _ = buf.read(5, 7, CLASS_XW, "XW")
        assert ready == pytest.approx(6)
        assert stats.dram_read_bytes["XW"] == 0


class TestEviction:
    def test_capacity_enforced(self, stats):
        buf, _ = make_buffer(stats, capacity=3)
        for addr in range(5):
            buf.write(addr, addr, CLASS_XW, "XW")
        assert buf.size_lines == 3

    def test_lru_victim(self, stats):
        buf, _ = make_buffer(stats, capacity=2)
        buf.write(0, 10, CLASS_XW, "XW")
        buf.write(1, 11, CLASS_XW, "XW")
        buf.read(2, 10, CLASS_XW, "XW")  # touch 10 -> 11 becomes LRU
        buf.write(3, 12, CLASS_XW, "XW")
        assert buf.contains(10) and buf.contains(12)
        assert not buf.contains(11)

    def test_fifo_ignores_touch(self, stats):
        buf, _ = make_buffer(stats, capacity=2, lru=False)
        buf.write(0, 10, CLASS_XW, "XW")
        buf.write(1, 11, CLASS_XW, "XW")
        buf.read(2, 10, CLASS_XW, "XW")  # touch should not matter
        buf.write(3, 12, CLASS_XW, "XW")
        assert not buf.contains(10)

    def test_priority_evicts_w_before_xw(self, stats):
        buf, _ = make_buffer(stats, capacity=2)
        buf.write(0, 100, CLASS_W, "W")
        buf.write(1, 200, CLASS_XW, "XW")
        buf.write(2, 300, CLASS_XW, "XW")
        assert not buf.contains(100)  # the W line went first
        assert buf.contains(200) and buf.contains(300)

    def test_partials_protected_longest(self, stats):
        buf, _ = make_buffer(stats, capacity=2)
        buf.accumulate(0, 500, "partial")
        buf.write(1, 100, CLASS_W, "W")
        buf.write(2, 200, CLASS_XW, "XW")
        buf.write(3, 300, CLASS_XW, "XW")
        assert buf.contains(500)  # partial survived all evictions

    def test_dirty_eviction_writes_back(self, stats):
        buf, _ = make_buffer(stats, capacity=1)
        buf.write(0, 1, CLASS_XW, "XW")
        buf.write(1, 2, CLASS_XW, "XW")
        assert stats.dram_write_bytes[CLASS_XW] == 64

    def test_clean_eviction_silent(self, stats):
        buf, _ = make_buffer(stats, capacity=1, latency=0)
        buf.read(0, 1, CLASS_XW, "XW")
        buf.read(10, 2, CLASS_XW, "XW")
        assert stats.dram_write_bytes[CLASS_XW] == 0

    def test_priority_setter_validates(self, stats):
        buf, _ = make_buffer(stats)
        with pytest.raises(ValueError):
            buf.evict_priority = (CLASS_W, CLASS_XW)  # incomplete

    def test_priority_reorder_effective(self, stats):
        buf, _ = make_buffer(stats, capacity=2)
        buf.evict_priority = (CLASS_XW, CLASS_OUT, CLASS_PARTIAL, CLASS_W)
        buf.write(0, 100, CLASS_W, "W")
        buf.write(1, 200, CLASS_XW, "XW")
        buf.write(2, 300, CLASS_XW, "XW")
        assert buf.contains(100)  # W now protected; an XW line went


class TestMSHR:
    def test_stall_when_full(self, stats):
        buf, _ = make_buffer(stats, capacity=8, mshr=2)
        buf.read(0, 1, CLASS_XW, "XW")
        buf.read(0, 2, CLASS_XW, "XW")
        _, issue3 = buf.read(0, 3, CLASS_XW, "XW")
        assert issue3 > 100  # waited for the first miss to retire

    def test_no_stall_below_limit(self, stats):
        buf, _ = make_buffer(stats, capacity=8, mshr=4)
        buf.read(0, 1, CLASS_XW, "XW")
        _, issue2 = buf.read(1, 2, CLASS_XW, "XW")
        assert issue2 == pytest.approx(1)

    def test_retired_misses_free_entries(self, stats):
        buf, _ = make_buffer(stats, capacity=8, mshr=1)
        buf.read(0, 1, CLASS_XW, "XW")
        _, issue = buf.read(500, 2, CLASS_XW, "XW")  # long after retirement
        assert issue == pytest.approx(500)


class TestAccumulator:
    def test_first_partial_allocates_without_fetch(self, stats):
        buf, _ = make_buffer(stats)
        buf.accumulate(0, 9, "partial")
        assert buf.contains(9)
        assert stats.dram_read_bytes["partial"] == 0
        assert stats.partials_produced == 1

    def test_merge_in_place_hits(self, stats):
        buf, _ = make_buffer(stats)
        buf.accumulate(0, 9, "partial")
        buf.accumulate(1, 9, "partial")
        assert stats.buffer_hits["partial"] == 1
        assert buf.size_lines == 1

    def test_spilled_partial_refetched(self, stats):
        buf, _ = make_buffer(stats, capacity=1)
        buf.accumulate(0, 9, "partial")
        buf.accumulate(1, 10, "partial")  # evicts 9 (dirty, spilled)
        assert stats.partial_spill_bytes == 64
        buf.accumulate(300, 9, "partial")  # must fetch the spilled copy
        assert stats.dram_read_bytes["partial"] == 64

    def test_footprint_peak_counts_spills(self, stats):
        buf, _ = make_buffer(stats, capacity=2)
        for addr in range(5):
            buf.accumulate(addr, addr, "partial")
        # 2 resident + 3 spilled.
        assert stats.partial_peak_bytes == 5 * 64

    def test_footprint_not_inflated_by_merges(self, stats):
        buf, _ = make_buffer(stats)
        for t in range(10):
            buf.accumulate(t, 9, "partial")
        assert stats.partial_peak_bytes == 64


class TestMaintenance:
    def test_flush_writes_dirty(self, stats):
        buf, _ = make_buffer(stats)
        buf.write(0, 1, CLASS_XW, "XW")
        buf.flush(10, cls=CLASS_XW)
        assert stats.dram_write_bytes[CLASS_XW] == 64
        assert buf.size_lines == 0

    def test_flush_with_tag_override(self, stats):
        buf, _ = make_buffer(stats)
        buf.accumulate(0, 1, "partial")
        buf.flush(10, cls=CLASS_PARTIAL, tag="AXW")
        assert stats.dram_write_bytes["AXW"] == 64

    def test_flush_all_classes(self, stats):
        buf, _ = make_buffer(stats)
        buf.write(0, 1, CLASS_W, "W")
        buf.write(1, 2, CLASS_XW, "XW")
        buf.flush(10)
        assert buf.size_lines == 0

    def test_invalidate_drops_without_writeback(self, stats):
        buf, _ = make_buffer(stats)
        buf.write(0, 1, CLASS_XW, "XW")
        dropped = buf.invalidate(CLASS_XW)
        assert dropped == 1
        assert stats.dram_write_bytes[CLASS_XW] == 0
        assert buf.size_lines == 0

    def test_reclassify_preserves_data(self, stats):
        buf, _ = make_buffer(stats)
        buf.accumulate(0, 1, "partial")
        moved = buf.reclassify(CLASS_PARTIAL, CLASS_XW)
        assert moved == 1
        assert buf.contains(1)
        assert buf.resident_lines(CLASS_XW) == 1
        assert buf.resident_lines(CLASS_PARTIAL) == 0

    def test_drop_spilled_partials(self, stats):
        buf, _ = make_buffer(stats, capacity=1)
        buf.accumulate(0, 1, "partial")
        buf.accumulate(1, 2, "partial")
        assert buf.drop_spilled_partials() == 1

    def test_construction_validation(self, stats, dram):
        with pytest.raises(ValueError):
            CacheBuffer(0, 64, dram, stats)
        with pytest.raises(ValueError):
            CacheBuffer(4, 0, dram, stats)
        with pytest.raises(ValueError):
            CacheBuffer(4, 64, dram, stats, mshr_entries=0)

    def test_insert_unknown_class_rejected(self, stats):
        buf, _ = make_buffer(stats)
        with pytest.raises(ValueError):
            buf.write(0, 1, "bogus", "X")
