"""Outer-product baseline (GCNAX-proxy).

Both phases use the outer product over CSC operands (Table I: GCNAX
aggregates and combines with outer products).  Partial outputs merge
according to ``merge_mode``:

* ``"pe"`` (default) -- read-modify-write through the PE array, the
  cost the paper attributes to OP baselines ("wasted cycles caused by
  merging partial outputs");
* ``"deferred"`` -- OuterSpace-style append-then-merge, the
  no-accumulator configuration of the Figure 10 comparison;
* ``"dmb"`` -- borrow HyMM's near-memory accumulator (for ablations).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gcn.model import GCNModel
from repro.hymm.base import AcceleratorBase
from repro.hymm.config import HyMMConfig
from repro.hymm.kernels import KernelContext, aggregation_op, combination_op
from repro.sparse import CSRMatrix, coo_to_csc


class OPAccelerator(AcceleratorBase):
    """Homogeneous outer-product accelerator."""

    name = "op"

    def __init__(self, config: Optional[HyMMConfig] = None, merge_mode: str = "pe") -> None:
        if config is None:
            # Prior-accelerator organisation: split input/output buffers.
            config = HyMMConfig(unified_buffer=False)
        super().__init__(config)
        self.merge_mode = merge_mode
        if merge_mode != "pe":
            self.name = f"op-{merge_mode}"

    def prepare(self, model: GCNModel) -> dict:
        prep = super().prepare(model)
        prep["adj_csc"] = coo_to_csc(model.norm_adj)
        prep["features_csc"] = coo_to_csc(model.dataset.features.to_coo())
        return prep

    def phase_config_exempt(self) -> frozenset:
        """OP never tiles, so the partition knobs are dead config here
        and sweeps over them share this accelerator's traces."""
        return super().phase_config_exempt() | {
            "threshold_fraction",
            "resident_fraction",
        }

    def run_combination(
        self, ctx: KernelContext, prep: dict, features: CSRMatrix, weights: np.ndarray
    ) -> np.ndarray:
        # The CSC view prepared up front is what the OP engine streams.
        return combination_op(
            ctx, prep["features_csc"], weights, merge_mode=self.merge_mode
        )

    def run_aggregation(self, ctx: KernelContext, prep: dict, xw: np.ndarray) -> np.ndarray:
        return aggregation_op(
            ctx, prep["adj_csc"], xw, merge_mode=self.merge_mode
        )
