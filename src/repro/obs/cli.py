"""``python -m repro.obs`` -- trace, report, diff, validate.

Subcommands:

``trace DATASET [--kind hymm] [-o out.json]``
    Run one simulation with a :class:`repro.obs.tracer.ChromeTracer`
    attached and write the Chrome trace-event JSON.  The job spec and
    the run's SimStats totals land in ``otherData`` (no wall times), so
    the export is byte-deterministic for a given spec.
``report FILE [--json]``
    Per-phase breakdown of a trace, per-span wall-time breakdown of a
    ``repro.telemetry`` span file, or per-job telemetry of a run
    manifest (auto-detected).
``diff A B``
    Compare two traces (per-phase cycles and DRAM bytes) or two
    manifests (per-label wall time and status).  One wall-clock span
    file against one simulated trace renders the *two clocks* view --
    host milliseconds next to simulated cycles, joined by correlation
    ID (see ``docs/observability.md``).
``slo [--host H] [--port P] [--json]``
    SLO verdict of a running sweep server (scraped from ``/healthz``);
    exit 1 when degraded.
``validate FILE [FILE ...]``
    Structural check against the in-repo trace schema; exit 1 on any
    problem.

Runtime/bench imports happen inside the handlers -- the CLI must be
importable (e.g. for ``--help``) without dragging the workload layer in.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.report import (
    diff_report,
    is_manifest,
    is_trace,
    is_wall_trace,
    load_json,
    manifest_report,
    manifest_summary,
    trace_report,
    trace_summary,
    wall_report,
    wall_summary,
)
from repro.obs.schema import validate_trace
from repro.obs.tracer import ChromeTracer

#: Whole-run totals stored in a trace's ``otherData`` -- the fields the
#: report cross-checks against the per-phase sums.
TOTAL_FIELDS = (
    "cycles",
    "busy_cycles",
    "dram_read_bytes",
    "dram_write_bytes",
    "buffer_hits",
    "buffer_misses",
)


def build_trace(spec: Any) -> Tuple[ChromeTracer, Any, Dict[str, Any]]:
    """Run ``spec`` traced; returns (tracer, result, otherData metadata).

    The metadata carries only deterministic values (spec + simulated
    totals, never wall times), so two runs of the same spec export
    byte-identical JSON.
    """
    from repro.runtime.execute import execute_spec

    tracer = ChromeTracer()
    result = execute_spec(spec, tracer=tracer)
    stats = result.stats
    totals = {
        "cycles": stats.cycles,
        "busy_cycles": stats.busy_cycles,
        "dram_read_bytes": sum(stats.dram_read_bytes.values()),
        "dram_write_bytes": sum(stats.dram_write_bytes.values()),
        "buffer_hits": sum(stats.buffer_hits.values()),
        "buffer_misses": sum(stats.buffer_misses.values()),
    }
    metadata = {
        "spec": spec.to_dict(),
        "accelerator": result.accelerator,
        "totals": totals,
    }
    # Under a bound correlation (serve workers) the trace carries the
    # request's corr_id -- the join key of the two-clocks diff.  Plain
    # CLI runs have none bound, so the export stays byte-deterministic.
    from repro.telemetry import current_correlation_id

    corr_id = current_correlation_id()
    if corr_id is not None:
        metadata["corr_id"] = corr_id
    return tracer, result, metadata


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.bench.runner import job_spec

    spec = job_spec(
        args.dataset,
        args.kind,
        scale=args.scale,
        n_layers=args.layers,
        seed=args.seed,
        sort_mode=args.sort_mode,
    )
    if args.corr_id:
        # Adopt the correlation ID a serve response handed the caller,
        # so this simulated trace joins that request's wall-clock spans
        # in ``repro.obs diff`` (the corr_id lands in metadata only --
        # the events and the fingerprint are unchanged).
        from repro.telemetry import bind_correlation

        bind_correlation(args.corr_id)
    tracer, result, metadata = build_trace(spec)
    out = args.output or f"{args.dataset}-{args.kind}.trace.json"
    tracer.write(out, metadata)
    problems = validate_trace(tracer.trace_dict(metadata))
    if problems:
        for problem in problems:
            print(f"schema: {problem}", file=sys.stderr)
        return 1
    print(
        f"{out}: {tracer.n_events} events, {result.stats.cycles} cycles "
        f"({spec.describe()})"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    doc = load_json(args.file)
    if is_wall_trace(doc):
        if args.json:
            print(json.dumps(wall_summary(doc), indent=2, sort_keys=True))
        else:
            print(wall_report(doc))
        return 0
    if is_trace(doc):
        if args.json:
            print(json.dumps(trace_summary(doc), indent=2, sort_keys=True))
        else:
            print(trace_report(doc))
        return 0
    if is_manifest(doc):
        if args.json:
            print(json.dumps(manifest_summary(doc), indent=2, sort_keys=True))
        else:
            print(manifest_report(doc))
        return 0
    print(f"{args.file}: neither a trace nor a run manifest", file=sys.stderr)
    return 1


def _cmd_diff(args: argparse.Namespace) -> int:
    a = load_json(args.a)
    b = load_json(args.b)
    try:
        print(diff_report(a, b, args.a, args.b))
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """Scrape a running sweep server's SLO evaluation from /healthz."""
    from repro.bench.report import format_table
    from repro.serve.client import ServeClient

    with ServeClient(args.host, args.port) as client:
        payload = client.healthz()
    slo = payload.get("slo")
    if not isinstance(slo, dict):
        print(
            "server reported no SLO evaluation (telemetry disabled?)",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps(slo, indent=2, sort_keys=True))
        return 0 if slo.get("verdict") == "ok" else 1
    verdict = slo.get("verdict", "?")
    uptime = payload.get("uptime_s")
    line = f"verdict: {verdict}"
    if isinstance(uptime, (int, float)):
        line += f"  (uptime {uptime:.0f}s)"
    print(line)
    headers = ["objective", "kind", "observed", "target", "burn", "events", "ok"]
    rows = []
    for obj in slo.get("objectives", []):
        if not isinstance(obj, dict):
            continue
        observed = obj.get("observed")
        rows.append(
            [
                str(obj.get("name", "?")),
                str(obj.get("kind", "?")),
                "-" if observed is None else round(float(observed), 4),
                obj.get("target"),
                round(float(obj.get("burn_rate", 0.0)), 3),
                int(obj.get("events", 0)),
                "yes" if obj.get("ok") else "NO",
            ]
        )
    print(format_table(headers, rows))
    return 0 if verdict == "ok" else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    status = 0
    for path in args.files:
        problems = validate_trace(load_json(path))
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability CLI: simulated-time traces and run telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser("trace", help="run one traced simulation")
    trace.add_argument("dataset", help="registry dataset name (e.g. cora)")
    trace.add_argument("--kind", default="hymm", help="accelerator kind")
    trace.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale (default: the bench scale)",
    )
    trace.add_argument("--layers", type=int, default=1)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--sort-mode", default=None)
    trace.add_argument(
        "--corr-id", default=None,
        help="stamp a correlation ID (e.g. from a serve response) into "
        "the trace metadata for the two-clocks diff",
    )
    trace.add_argument("-o", "--output", default=None, help="trace JSON path")
    trace.set_defaults(func=_cmd_trace)

    report = sub.add_parser("report", help="summarise a trace or manifest")
    report.add_argument("file")
    report.add_argument("--json", action="store_true", help="JSON summary")
    report.set_defaults(func=_cmd_report)

    diff = sub.add_parser("diff", help="compare two traces or manifests")
    diff.add_argument("a")
    diff.add_argument("b")
    diff.set_defaults(func=_cmd_diff)

    slo = sub.add_parser(
        "slo", help="SLO verdict of a running sweep server (via /healthz)"
    )
    slo.add_argument("--host", default="127.0.0.1")
    slo.add_argument("--port", type=int, default=7341)
    slo.add_argument("--json", action="store_true", help="raw SLO payload")
    slo.set_defaults(func=_cmd_slo)

    validate = sub.add_parser("validate", help="schema-check trace files")
    validate.add_argument("files", nargs="+")
    validate.set_defaults(func=_cmd_validate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    result: int = args.func(args)
    return result


if __name__ == "__main__":
    raise SystemExit(main())
