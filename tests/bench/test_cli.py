"""Command-line interface for the experiment harness."""

import pytest

from repro.bench.cli import ALL_ORDER, EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_experiments(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_names_and_flags(self):
        args = build_parser().parse_args(
            ["fig7", "table2", "--datasets", "cora", "--full-scale"]
        )
        assert args.experiments == ["fig7", "table2"]
        assert args.datasets == ["cora"]
        assert args.full_scale


class TestRegistry:
    def test_all_order_covers_every_experiment(self):
        assert set(ALL_ORDER) == set(EXPERIMENTS)

    def test_every_paper_item_present(self):
        for name in ("table1", "table2", "table3", "fig2", "fig6", "fig7",
                     "fig8", "fig9", "fig10", "fig11"):
            assert name in EXPERIMENTS


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table3" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figure42"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_cheap_table(self, capsys):
        assert main(["table1"]) == 0
        assert "Hybrid" in capsys.readouterr().out

    def test_figure_with_dataset_filter_and_output(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.bench.workloads._FAST_SCALES", {"cora": 0.05}
        )
        assert main(["fig2", "--datasets", "cora", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "fig2.txt").exists()
        assert "CR" in capsys.readouterr().out

    def test_full_scale_sets_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        import os
        main(["table1", "--full-scale"])
        assert os.environ.get("REPRO_FULL_SCALE") == "1"
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
