"""Traced simulation runs: determinism, conservation, zero overhead.

The three acceptance properties of the observability layer:

* **Determinism** -- tracing the same :class:`JobSpec` twice exports
  byte-identical Chrome trace JSON (no wall times anywhere);
* **Conservation** -- folding a run's per-phase ``phase_snapshots``
  back together with ``SimStats.merge`` reproduces the whole-run
  aggregate exactly, for every accelerator;
* **Zero overhead** -- a traced run's SimStats equal an untraced run's
  byte for byte (tracing observes, never perturbs).
"""

from __future__ import annotations

import json

import pytest

from repro.bench.runner import (
    ALL_ACCELERATORS,
    merged_phase_snapshot,
    phase_snapshot_rows,
)
from repro.obs.cli import build_trace, main
from repro.obs.report import phase_sums, trace_summary
from repro.obs.schema import validate_trace
from repro.obs.tracer import ChromeTracer
from repro.runtime.execute import execute_spec
from repro.runtime.job import JobSpec
from repro.sim import SimStats


def _spec(kind: str = "hymm", **kw) -> JobSpec:
    base = dict(dataset="cora", kind=kind, scale=0.1, n_layers=2, seed=1)
    base.update(kw)
    return JobSpec(**base)


@pytest.fixture(scope="module")
def traced():
    tracer, result, metadata = build_trace(_spec())
    return tracer, result, metadata


class TestDeterminism:
    def test_same_spec_byte_identical_trace(self, traced):
        tracer, _, metadata = traced
        tracer2, _, metadata2 = build_trace(_spec())
        assert tracer.to_json(metadata) == tracer2.to_json(metadata2)

    def test_no_wall_times_in_metadata(self, traced):
        _, _, metadata = traced
        blob = json.dumps(metadata, default=str)
        assert "wall" not in blob
        assert "sort_ms" not in blob


class TestSchemaAndReport:
    def test_trace_validates(self, traced):
        tracer, _, metadata = traced
        assert validate_trace(tracer.trace_dict(metadata)) == []

    def test_phase_sums_equal_run_totals(self, traced):
        tracer, result, metadata = traced
        doc = tracer.trace_dict(metadata)
        sums = phase_sums(doc)
        assert sums["cycles"] == result.stats.cycles
        assert sums["busy_cycles"] == result.stats.busy_cycles
        assert sums["dram_read_bytes"] == sum(
            result.stats.dram_read_bytes.values()
        )
        assert sums["dram_write_bytes"] == sum(
            result.stats.dram_write_bytes.values()
        )
        summary = trace_summary(doc)
        assert summary["sums_match_totals"] is True

    def test_trace_has_all_layers_of_events(self, traced):
        tracer, _, _ = traced
        cats = {e["cat"] for e in tracer.trace_dict()["traceEvents"]}
        assert {"engine", "region", "phase", "counter"} <= cats


class TestConservation:
    @pytest.mark.parametrize("kind", ALL_ACCELERATORS)
    def test_phase_snapshots_fold_to_whole_run(self, kind):
        result = execute_spec(_spec(kind))
        assert result.phase_snapshots, f"{kind} produced no phase snapshots"
        folded = merged_phase_snapshot(result)
        assert folded.to_dict() == result.stats.to_dict()

    def test_rows_match_snapshots(self):
        result = execute_spec(_spec())
        rows = dict(phase_snapshot_rows(result))
        assert set(rows) == set(result.phase_snapshots)
        total_cycles = sum(fields["cycles"] for fields in rows.values())
        assert total_cycles == result.stats.cycles

    def test_aggregation_suffix_folds_aggregation_only(self):
        result = execute_spec(_spec())
        agg = merged_phase_snapshot(result, "aggregation")
        whole = merged_phase_snapshot(result)
        assert 0 < agg.cycles < whole.cycles


class TestZeroOverhead:
    def test_traced_stats_equal_untraced(self):
        untraced = execute_spec(_spec())
        traced = execute_spec(_spec(), tracer=ChromeTracer())
        assert traced.stats.to_dict() == untraced.stats.to_dict()
        assert traced.phase_snapshots.keys() == untraced.phase_snapshots.keys()
        for phase in traced.phase_snapshots:
            assert (
                traced.phase_snapshots[phase].to_dict()
                == untraced.phase_snapshots[phase].to_dict()
            )

    def test_null_tracer_leaves_no_events_possible(self):
        # The default path cannot accumulate state: there is no storage.
        result = execute_spec(_spec())
        assert result.phase_snapshots  # snapshots exist without tracing
        merged = merged_phase_snapshot(result)
        assert isinstance(merged, SimStats)


class TestCli:
    def test_trace_report_diff_validate(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        spec_args = ["cora", "--scale", "0.1", "--layers", "2", "--seed", "1"]
        assert main(["trace", *spec_args, "--kind", "hymm", "-o", str(a)]) == 0
        assert main(["trace", *spec_args, "--kind", "op", "-o", str(b)]) == 0
        assert main(["validate", str(a), str(b)]) == 0
        assert main(["report", str(a)]) == 0
        out = capsys.readouterr().out
        assert "phase sums match run totals" in out
        assert main(["report", str(a), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["sums_match_totals"] is True
        assert main(["diff", str(a), str(b)]) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_corr_id_flag_lands_in_metadata_only(self, tmp_path, capsys):
        from repro.telemetry import bind_correlation

        plain = tmp_path / "plain.json"
        tagged = tmp_path / "tagged.json"
        spec_args = ["cora", "--scale", "0.1", "--layers", "2", "--seed", "1"]
        try:
            assert main(["trace", *spec_args, "-o", str(plain)]) == 0
            assert (
                main(
                    [
                        "trace",
                        *spec_args,
                        "-o",
                        str(tagged),
                        "--corr-id",
                        "feedface00000042",
                    ]
                )
                == 0
            )
        finally:
            bind_correlation(None)
        capsys.readouterr()
        plain_doc = json.loads(plain.read_text())
        tagged_doc = json.loads(tagged.read_text())
        assert "corr_id" not in plain_doc["otherData"]
        assert tagged_doc["otherData"]["corr_id"] == "feedface00000042"
        # The corr_id is metadata only: the events are unchanged.
        assert tagged_doc["traceEvents"] == plain_doc["traceEvents"]
        assert main(["validate", str(tagged)]) == 0

    def test_validate_rejects_malformed(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert main(["validate", str(bad)]) == 1

    def test_report_rejects_unknown_document(self, tmp_path, capsys):
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"neither": True}))
        assert main(["report", str(other)]) == 1

    def test_report_manifest(self, tmp_path, capsys):
        manifest = {
            "jobs": [
                {
                    "label": "hymm/cora@0.1",
                    "status": "done",
                    "attempts": 1,
                    "wall_seconds": 1.25,
                    "max_rss_kb": 2048,
                    "timed_out": False,
                }
            ],
            "summary": "1 job: 1 simulated",
        }
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(manifest))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "hymm/cora@0.1" in out
        assert main(["report", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_jobs"] == 1
        assert summary["peak_rss_kb"] == 2048
