"""SLO evaluation: rolling windows, verdicts, burn-rate gauges."""

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slo import (
    KIND_ERROR_RATE,
    KIND_LATENCY,
    VERDICT_DEGRADED,
    VERDICT_OK,
    Objective,
    SloTracker,
)


class FakeClock:
    def __init__(self):
        self.t = 1000.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def registry():
    return MetricsRegistry()


def latency_tracker(registry, clock, target=5.0, window_s=60.0):
    registry.histogram("repro_hit_ms", "Hit path", buckets=(1.0, 2.0, 4.0, 8.0, 64.0))
    return SloTracker(
        registry,
        [
            Objective(
                name="hitpath-p99",
                kind=KIND_LATENCY,
                target=target,
                metric="repro_hit_ms",
                percentile=99.0,
                window_s=window_s,
            )
        ],
        clock=clock,
    )


class TestLatencyObjective:
    def test_empty_window_is_ok(self, registry, clock):
        tracker = latency_tracker(registry, clock)
        verdict = tracker.evaluate()
        assert verdict["verdict"] == VERDICT_OK
        [obj] = verdict["objectives"]
        assert obj["events"] == 0
        assert obj["ok"] is True

    def test_fast_traffic_is_ok(self, registry, clock):
        tracker = latency_tracker(registry, clock)
        hist = registry.get("repro_hit_ms")
        for _ in range(100):
            hist.observe(0.8)
        verdict = tracker.evaluate()
        assert verdict["verdict"] == VERDICT_OK
        [obj] = verdict["objectives"]
        assert obj["observed"] <= 1.0
        assert obj["burn_rate"] <= 1.0
        assert obj["events"] == 100

    def test_slow_burst_degrades(self, registry, clock):
        tracker = latency_tracker(registry, clock)
        hist = registry.get("repro_hit_ms")
        for _ in range(100):
            hist.observe(50.0)
        verdict = tracker.evaluate()
        assert verdict["verdict"] == VERDICT_DEGRADED
        [obj] = verdict["objectives"]
        assert obj["observed"] > 5.0
        assert obj["burn_rate"] > 1.0
        assert obj["ok"] is False

    def test_burst_ages_out_of_window(self, registry, clock):
        tracker = latency_tracker(registry, clock, window_s=60.0)
        hist = registry.get("repro_hit_ms")
        for _ in range(100):
            hist.observe(50.0)
        assert tracker.evaluate()["verdict"] == VERDICT_DEGRADED
        # A window later with no new traffic: the delta vs the
        # post-burst baseline is empty, so the verdict recovers.
        clock.advance(61.0)
        verdict = tracker.evaluate()
        assert verdict["verdict"] == VERDICT_OK
        assert verdict["objectives"][0]["events"] == 0

    def test_recovery_with_fresh_fast_traffic(self, registry, clock):
        tracker = latency_tracker(registry, clock, window_s=60.0)
        hist = registry.get("repro_hit_ms")
        for _ in range(50):
            hist.observe(50.0)
        tracker.evaluate()
        clock.advance(61.0)
        for _ in range(50):
            hist.observe(0.5)
        verdict = tracker.evaluate()
        assert verdict["verdict"] == VERDICT_OK
        [obj] = verdict["objectives"]
        assert obj["events"] == 50
        assert obj["observed"] <= 1.0

    def test_burn_gauge_published(self, registry, clock):
        tracker = latency_tracker(registry, clock)
        registry.get("repro_hit_ms").observe(50.0)
        tracker.evaluate()
        burn = registry.get("repro_slo_burn_rate")
        assert burn.labels("hitpath-p99").value > 1.0


class TestErrorRateObjective:
    def make(self, registry, clock, target=0.01):
        registry.counter("repro_failed_total", "Failed")
        registry.counter("repro_submitted_total", "Submitted")
        return SloTracker(
            registry,
            [
                Objective(
                    name="error-rate",
                    kind=KIND_ERROR_RATE,
                    target=target,
                    numerator="repro_failed_total",
                    denominator="repro_submitted_total",
                    window_s=60.0,
                )
            ],
            clock=clock,
        )

    def test_no_traffic_is_ok(self, registry, clock):
        tracker = self.make(registry, clock)
        verdict = tracker.evaluate()
        assert verdict["verdict"] == VERDICT_OK
        assert verdict["objectives"][0]["events"] == 0

    def test_clean_traffic_is_ok(self, registry, clock):
        tracker = self.make(registry, clock)
        registry.get("repro_submitted_total").inc(200)
        verdict = tracker.evaluate()
        assert verdict["verdict"] == VERDICT_OK
        [obj] = verdict["objectives"]
        assert obj["observed"] == 0.0
        assert obj["events"] == 200

    def test_failures_above_budget_degrade(self, registry, clock):
        tracker = self.make(registry, clock)
        registry.get("repro_submitted_total").inc(100)
        registry.get("repro_failed_total").inc(5)
        verdict = tracker.evaluate()
        assert verdict["verdict"] == VERDICT_DEGRADED
        [obj] = verdict["objectives"]
        assert obj["observed"] == pytest.approx(0.05)
        assert obj["burn_rate"] == pytest.approx(5.0)

    def test_delta_based_window(self, registry, clock):
        tracker = self.make(registry, clock)
        registry.get("repro_submitted_total").inc(100)
        registry.get("repro_failed_total").inc(5)
        tracker.evaluate()
        clock.advance(61.0)
        # 100 clean requests later the old failures are out of window.
        registry.get("repro_submitted_total").inc(100)
        verdict = tracker.evaluate()
        assert verdict["verdict"] == VERDICT_OK
        assert verdict["objectives"][0]["observed"] == 0.0


class TestObjectiveValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown objective kind"):
            Objective(name="x", kind="nope", target=1.0)

    def test_latency_needs_metric(self):
        with pytest.raises(ValueError, match="needs a metric"):
            Objective(name="x", kind=KIND_LATENCY, target=1.0)

    def test_error_rate_needs_both_counters(self):
        with pytest.raises(ValueError, match="numerator and"):
            Objective(
                name="x", kind=KIND_ERROR_RATE, target=0.1,
                numerator="repro_a_total",
            )

    def test_target_must_be_positive(self):
        with pytest.raises(ValueError, match="target must be > 0"):
            Objective(
                name="x", kind=KIND_LATENCY, target=0.0, metric="repro_m",
            )
