"""Component-level area model reproducing Table III."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.area.logic import control_area_mm2, mac_area_mm2
from repro.area.sram import cam_area_mm2, sram_area_mm2
from repro.hymm.config import HyMMConfig

#: The paper scales 7 nm results to TSMC 40 nm for comparison with
#: GCNAX and GROW.  Classical (dense) scaling goes with the square of
#: the feature size; the paper's per-component ratios are 31x-35x,
#: consistent with (40/7)^2 ~ 32.7.
def node_scale_factor(from_nm: float = 7.0, to_nm: float = 40.0) -> float:
    """Area multiplier between technology nodes (length-squared rule)."""
    if from_nm <= 0 or to_nm <= 0:
        raise ValueError("node sizes must be positive")
    return (to_nm / from_nm) ** 2


@dataclass(frozen=True)
class AreaReport:
    """Per-component areas in mm^2 for one node."""

    node: str
    components: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def rows(self) -> "List[Tuple[str, float]]":
        """(component, area) pairs in Table III order, plus the total."""
        order = ["PE Array", "DMB", "SMQ", "LSQ", "Others"]
        out = [(name, self.components[name]) for name in order]
        out.append(("Total", self.total))
        return out


class AreaModel:
    """Estimate silicon area of an accelerator configuration.

    At the default :class:`HyMMConfig` this reproduces the paper's
    Table III at 7 nm (component for component) and approximates the
    40 nm column via node scaling.  Non-default configurations (bigger
    DMB, more PEs) extrapolate along the CACTI-style curves, which is
    what the design-space benches sweep.
    """

    def __init__(self, config: "Optional[HyMMConfig]" = None) -> None:
        self.config = config if config is not None else HyMMConfig()

    def report(self, node: str = "7nm") -> AreaReport:
        """Component areas at ``"7nm"`` or ``"40nm"``."""
        cfg = self.config
        components = {
            "PE Array": mac_area_mm2(cfg.n_pes),
            "DMB": sram_area_mm2(cfg.dmb_bytes / 1024),
            "SMQ": sram_area_mm2(cfg.smq_bytes / 1024),
            "LSQ": cam_area_mm2(cfg.lsq_entries * cfg.lsq_entry_bytes / 1024),
            "Others": control_area_mm2(cfg.n_pes),
        }
        if node == "7nm":
            return AreaReport(node, components)
        if node == "40nm":
            scale = node_scale_factor(7.0, 40.0)
            return AreaReport(node, {k: v * scale for k, v in components.items()})
        raise ValueError("node must be '7nm' or '40nm'")

    def total_mm2(self, node: str = "7nm") -> float:
        """Summed area at the given node."""
        return self.report(node).total
