"""Rule ``stats-conservation``: cycle accounting stays conserved.

The paper's evaluation (Figs. 7-11) is derived entirely from
:class:`repro.sim.stats.SimStats` counters.  Two ways that accounting
silently rots:

* a counter field is declared (and serialised, and reported) but no
  simulator code ever writes it -- it reads as a legitimate zero
  forever.  Every non-derived field on ``SimStats`` must have at least
  one write site in the simulator packages (``repro.sim`` /
  ``repro.hymm`` / ``repro.baselines``), where a write is an
  assignment, an augmented assignment, a subscript store, or an
  in-place mutator call (``update``/``append``/``extend``/``add``) --
  anywhere except ``SimStats``'s own bulk-copy methods (``merge``,
  ``to_dict``/``from_dict``/``as_dict``, ``copy``/``delta_since``),
  which touch every field by construction and would make the check
  vacuous;
* a breakdown is keyed with a tag outside the declared traffic-tag
  vocabulary (``TRAFFIC_TAGS`` in ``repro.sim.stats``) -- the Fig. 11
  stacking would grow a phantom component.  Every *literal* tag (a
  string subscript on a Counter field, or a literal ``tag=`` argument)
  must be in the declared set.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.analyzer import astutil
from repro.devtools.analyzer.core import Finding, Project, Rule, SourceModule, register

#: Mutator method names that count as writes when called on a field.
MUTATORS = {"update", "append", "extend", "add", "subtract", "clear", "insert"}

#: SimStats methods whose writes do not count (bulk copies by design).
EXEMPT_METHODS = {
    "merge", "to_dict", "from_dict", "as_dict", "__init__",
    "copy", "delta_since",
}


@register
class StatsConservationRule(Rule):
    name = "stats-conservation"
    description = (
        "every SimStats counter is written by simulator code, and every "
        "literal traffic tag is in the declared vocabulary"
    )
    default_severity = "error"
    default_options = {
        "stats_class": "SimStats",
        "tags_constant": "TRAFFIC_TAGS",
        "scope": ["repro.sim", "repro.hymm", "repro.baselines"],
    }

    def run(self, project: Project) -> Iterator[Finding]:
        located = self._locate_stats(project)
        if located is None:
            return
        stats_mod, stats_cls = located
        fields = astutil.dataclass_fields(stats_cls)
        counter_fields = {
            name for name, ann in fields
            if "Counter" in astutil.annotation_names(ann.annotation)
        }
        tags = self._declared_tags(stats_mod)

        writes: Set[str] = set()
        tag_findings: List[Finding] = []
        scope = tuple(self.options["scope"])
        field_names = {name for name, _ in fields}
        for mod in project.in_package(*scope):
            exempt = self._exempt_subtrees(mod, stats_cls.name)
            for node in astutil.walk_excluding(mod.tree, exempt):
                writes |= _written_fields(node, field_names)
                if tags is not None:
                    tag_findings.extend(
                        self._check_tags(project, mod, node, counter_fields, tags)
                    )

        for name, ann in fields:
            if name not in writes:
                yield self.finding(
                    project, stats_mod, ann,
                    f"SimStats.{name} is declared (and serialised) but no "
                    f"simulator code in {'/'.join(scope)} ever writes it; "
                    f"it will read as a legitimate zero forever",
                    symbol=f"{stats_cls.name}.{name}:unwritten",
                )
        yield from tag_findings

    # ------------------------------------------------------------------
    def _locate_stats(
        self, project: Project
    ) -> Optional[Tuple[SourceModule, ast.ClassDef]]:
        target = self.options["stats_class"]
        for mod in project.modules:
            for cls in astutil.iter_classes(mod.tree):
                if cls.name == target and astutil.is_dataclass_def(cls):
                    return mod, cls
        return None

    def _declared_tags(self, stats_mod: SourceModule) -> Optional[Set[str]]:
        """The ``TRAFFIC_TAGS`` tuple/set literal, if declared."""
        constant = self.options["tags_constant"]
        for node in stats_mod.tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for tgt in targets:
                if isinstance(tgt, ast.Name) and tgt.id == constant:
                    if isinstance(value, ast.Call):
                        # frozenset({...}) / tuple([...])
                        value = value.args[0] if value.args else value
                    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                        return {
                            e.value
                            for e in value.elts
                            if isinstance(e, ast.Constant)
                            and isinstance(e.value, str)
                        }
        return None

    def _exempt_subtrees(self, mod: SourceModule, stats_name: str) -> Set[ast.AST]:
        exempt: Set[ast.AST] = set()
        for cls in astutil.iter_classes(mod.tree):
            if cls.name != stats_name:
                continue
            for name, fn in astutil.methods_of(cls).items():
                if name in EXEMPT_METHODS:
                    exempt.add(fn)
        return exempt

    def _check_tags(
        self,
        project: Project,
        mod: SourceModule,
        node: ast.AST,
        counter_fields: Set[str],
        tags: Set[str],
    ) -> Iterator[Finding]:
        # stats.buffer_hits["bogus"] -- literal subscript on a counter.
        if isinstance(node, ast.Subscript):
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr in counter_fields
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
                and node.slice.value not in tags
            ):
                yield self.finding(
                    project, mod, node,
                    f"undeclared traffic tag {node.slice.value!r} on "
                    f"{value.attr}; declare it in TRAFFIC_TAGS or use an "
                    f"existing component",
                    symbol=f"tag:{node.slice.value}",
                )
        # engine.mac_load(addr, cls, tag="bogus") -- literal tag kwarg.
        elif isinstance(node, ast.Call):
            for kw in node.keywords:
                if (
                    kw.arg == "tag"
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                    and kw.value.value not in tags
                ):
                    yield self.finding(
                        project, mod, kw.value,
                        f"undeclared traffic tag {kw.value.value!r} passed "
                        f"as tag=; declare it in TRAFFIC_TAGS or use an "
                        f"existing component",
                        symbol=f"tag:{kw.value.value}",
                    )


def _written_fields(node: ast.AST, field_names: Set[str]) -> Set[str]:
    """Field names this single statement/expression node writes."""
    written: Set[str] = set()

    def attr_field(expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Attribute) and expr.attr in field_names:
            return expr.attr
        return None

    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for tgt in targets:
            name = attr_field(tgt)
            if name is None and isinstance(tgt, ast.Subscript):
                name = attr_field(tgt.value)
            if name is not None:
                written.add(name)
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATORS:
            name = attr_field(func.value)
            if name is not None:
                written.add(name)
    return written
