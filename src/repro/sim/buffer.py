"""On-chip buffer model (the DMB's buffer memory, Section IV-D).

A set of 64-byte lines managed with:

* **class-aware priority eviction** -- every resident line belongs to a
  traffic class (``W`` weights, ``XW`` combination results, ``AXW``
  final outputs, ``partial`` partial outputs).  On capacity pressure the
  victim comes from the lowest-priority non-empty class, LRU within the
  class: the paper's "evicted to the off-chip memory in the order of W
  and then XW, ensuring that partial outputs are retained ... the buffer
  employs a least recently used (LRU) eviction policy";
* **MSHRs** -- duplicate outstanding misses merge; when all MSHRs are
  busy the requesting frontend stalls until the earliest miss returns;
* a **near-memory accumulator** (:meth:`CacheBuffer.accumulate`) --
  partial outputs of the same index merge in place without occupying the
  PE array; partial lines evicted to DRAM are re-fetched and re-merged
  if touched again, and the partial-output footprint (resident +
  spilled) is tracked for the paper's Figure 10.

Internally the buffer is a **preallocated slot arena**: every per-line
attribute lives in a parallel Python list indexed by an integer slot
(``_slot_cls`` / ``_slot_dirty`` / ``_slot_ready`` / ``_slot_addr``)
and a single ``_slot_of`` dict maps addr -> slot, so no per-line object
is ever allocated on the hot path.  LRU order is one intrusive
doubly-linked list of slots per class, realized as a slot-keyed
``OrderedDict`` (CPython's OrderedDict *is* a C-level intrusive linked
list over its keys): a touch is one ``move_to_end`` on a small-int key,
eviction is one ``popitem(last=False)``, both O(1) with no per-entry
allocation and no scanning.  The MSHR file is a plain FIFO deque
rather than a heap: miss ready-times are strictly monotone in
acquisition order (each miss occupies the DRAM channel after the
previous one, and the per-line transfer cost is positive), so FIFO pop
order *is* earliest-ready order, exactly.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from itertools import islice, repeat
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.memory import DRAM
from repro.sim.stats import SimStats

CLASS_W = "W"
CLASS_XW = "XW"
CLASS_OUT = "AXW"
CLASS_PARTIAL = "partial"

#: Every line class the buffer knows about.
ALL_CLASSES = (CLASS_W, CLASS_XW, CLASS_OUT, CLASS_PARTIAL)

#: Dense class indices used by the slot arena (and the batched engine's
#: inlined hit paths).
CLASS_INDEX: Dict[str, int] = {cls: i for i, cls in enumerate(ALL_CLASSES)}

_N_CLASSES = len(ALL_CLASSES)
_PARTIAL_IDX = CLASS_INDEX[CLASS_PARTIAL]

#: Paper eviction order: weights first, then combination results; final
#: outputs and partial outputs are retained as long as possible.
DEFAULT_EVICT_PRIORITY = (CLASS_W, CLASS_XW, CLASS_OUT, CLASS_PARTIAL)

#: Sink that exhausts a ``map`` without building a list -- the epoch
#: commit path uses it to run C-level ``list.__setitem__`` sweeps over
#: the arena's parallel arrays with no per-element bytecode.
_drain = deque(maxlen=0).extend


class CacheBuffer:
    """Unified on-chip buffer with priority-LRU eviction and MSHRs.

    Slot-arena layout (all lists preallocated in ``__init__``):

    ``_slot_of``
        addr -> slot, the single residency probe shared by the scalar
        ``read`` path and the batched engine's inlined hit loops.
    ``_slot_cls`` / ``_slot_dirty`` / ``_slot_ready`` / ``_slot_addr``
        per-slot line state, ``_slot_cls`` holding dense
        :data:`CLASS_INDEX` values.
    ``_lru_ods``
        one intrusive LRU list of slots per class, as a slot-keyed
        ``OrderedDict`` (front = LRU, back = MRU).  Touch =
        ``move_to_end``, evict = ``popitem(last=False)``, both O(1)
        C-level linked-list splices on small-int keys.
    ``_free_slots``
        stack of unused slot indices.
    ``_max_ready``
        watermark over every ready time ever handed to a resident line
        -- lets the batched engine's all-hit lane skip the per-element
        ready check when no fetch can still be in flight.
    """

    def __init__(
        self,
        capacity_lines: int,
        line_bytes: int,
        dram: DRAM,
        stats: SimStats,
        hit_latency: int = 1,
        mshr_entries: int = 16,
        evict_priority: Tuple[str, ...] = DEFAULT_EVICT_PRIORITY,
        lru: bool = True,
    ) -> None:
        if capacity_lines <= 0:
            raise ValueError("capacity_lines must be positive")
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        if mshr_entries <= 0:
            raise ValueError("mshr_entries must be positive")
        self.capacity_lines = capacity_lines
        self.line_bytes = line_bytes
        self.dram = dram
        self.stats = stats
        self.hit_latency = hit_latency
        self.mshr_entries = mshr_entries
        self.lru = lru
        #: Simulated-time event sink (disabled NULL_TRACER by default).
        #: Only *cold* paths emit -- flush/invalidate/reclassify and the
        #: spilled-partial refetch; the per-access hit/miss machinery is
        #: covered by the engine's batch spans and stays untouched.
        self.tracer: Tracer = NULL_TRACER
        cap = capacity_lines
        self._slot_cls: List[int] = [0] * cap
        self._slot_dirty: List[bool] = [False] * cap
        self._slot_ready: List[float] = [0.0] * cap
        self._slot_addr: List[int] = [0] * cap
        self._lru_ods: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(_N_CLASSES)
        ]
        # Bound move_to_end per class, hoisting the attribute lookup
        # out of every LRU touch (the ODs are created once and only
        # ever mutated in place, so the bindings stay valid).
        self._lru_mte = [od.move_to_end for od in self._lru_ods]
        self._free_slots: List[int] = list(range(cap - 1, -1, -1))
        self._class_count: List[int] = [0] * _N_CLASSES
        self._slot_of: Dict[int, int] = {}
        # Reusable residency-mask scratch for classify_batch (grown on
        # demand, never shrunk) -- classification runs once per issued
        # batch on every dataflow, so the per-call bool allocation was
        # pure overhead.
        self._mask_scratch: "np.ndarray" = np.empty(0, dtype=bool)
        self._evict_priority: Tuple[str, ...] = ()
        self._evict_order: Tuple[int, ...] = ()
        self.evict_priority = evict_priority
        self._size = 0
        self._max_ready = 0.0
        # MSHRs: addr -> ready cycle, plus the FIFO of (ready, addr) in
        # acquisition order.  Readies are strictly increasing along the
        # FIFO (see module docstring), so the front is always the
        # earliest outstanding miss -- heap semantics without the heap.
        self._outstanding: Dict[int, float] = {}
        self._mshr_fifo: Deque[Tuple[float, int]] = deque()
        # Partial lines evicted to DRAM whose value is a partial sum.
        self._spilled_partials: Set[int] = set()
        # Precomputed DRAM constants, so the single-frame miss path
        # below evolves ``dram.next_free`` with arithmetic bit-identical
        # to DRAM.read/write without walking the call chain per miss.
        self._line_cost = dram.config.cycles_for(line_bytes)
        self._read_latency = dram.config.latency_cycles
        # Everything the eviction scan needs, bound once: unpacking one
        # tuple is cheaper than a dozen attribute loads per evicting
        # insert (the outer lists are never rebound, only mutated in
        # place, so the bindings stay valid).
        self._evict_ctx = (
            stats,
            dram,
            line_bytes,
            self._line_cost,
            capacity_lines,
            self._slot_addr,
            self._slot_dirty,
            self._lru_ods,
        )

    # ------------------------------------------------------------------
    # Introspection / configuration
    # ------------------------------------------------------------------
    @property
    def evict_priority(self) -> Tuple[str, ...]:
        """Current victim-class order (first = evicted first).

        Settable between phases: the unified DMB "can manage the space
        for input and output data dynamically" (Section III), so the
        hybrid scheduler biases eviction toward the class the current
        dataflow will not reuse.
        """
        return self._evict_priority

    @evict_priority.setter
    def evict_priority(self, order: Iterable[str]) -> None:
        order = tuple(order)
        if sorted(order) != sorted(ALL_CLASSES):
            raise ValueError(
                f"evict_priority must be a permutation of {ALL_CLASSES}, got {order}"
            )
        self._evict_priority = order
        self._evict_order = tuple(CLASS_INDEX[c] for c in order)

    @property
    def size_lines(self) -> int:
        """Lines currently resident."""
        return self._size

    def contains(self, addr: int) -> bool:
        """Whether the address is resident (no LRU side effects)."""
        return addr in self._slot_of

    def route(self, cls: str) -> "CacheBuffer":
        """The physical buffer requests of class ``cls`` land in.

        The unified DMB is one buffer, so this is ``self``; the split
        organisation overrides it.  The batched engine resolves the
        route once per address batch instead of once per address.
        """
        return self

    def classify_batch(self, addrs: "np.ndarray") -> "np.ndarray":
        """Residency mask for a whole address batch (no LRU effects).

        One vectorised membership pass against the slot map.  The mask
        is only a valid *plan* while residency is invariant -- the
        batched engine uses it for stream loads (which never allocate)
        and falls back to per-address probes whenever an access could
        insert or evict lines mid-batch.

        The mask is a view into a per-buffer scratch array: it is only
        valid until the *next* ``classify_batch`` call on the same
        buffer.  Callers that need two live masks at once must either
        classify on distinct buffers (the split pair's halves each own
        their scratch) or copy -- every engine call site consumes the
        mask before re-classifying.
        """
        n = len(addrs)
        scratch = self._mask_scratch
        if len(scratch) < n:
            scratch = self._mask_scratch = np.empty(n, dtype=bool)
        mask = scratch[:n]
        slot_of = self._slot_of
        if not slot_of:
            mask[:] = False
            return mask
        mask[:] = np.fromiter(
            map(slot_of.__contains__, addrs.tolist()), dtype=bool, count=n
        )
        return mask

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer to this buffer's cold-path events."""
        self.tracer = tracer

    def resident_lines(self, cls: str) -> int:
        """Resident line count of one class."""
        return self._class_count[CLASS_INDEX[cls]]

    def occupancy_by_class(self) -> Dict[str, int]:
        """Lines held per class -- the Section III "dynamic space
        management" observable: during RWP phases the buffer fills with
        XW, during OP phases with partial outputs."""
        return {cls: self._class_count[CLASS_INDEX[cls]] for cls in ALL_CLASSES}

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def read(self, cycle: float, addr: int, cls: str, tag: str) -> Tuple[float, float]:
        """Demand read of one line.

        Returns ``(ready_cycle, issue_cycle)``; ``issue_cycle >= cycle``
        when the request had to stall for a free MSHR.
        """
        slot = self._slot_of.get(addr)
        if slot is not None:
            if self.lru:
                self._lru_ods[self._slot_cls[slot]].move_to_end(slot)
            self.stats.buffer_hits[tag] += 1
            return max(cycle + self.hit_latency, self._slot_ready[slot]), cycle
        self.stats.buffer_misses[tag] += 1
        pending = self._outstanding.get(addr)
        if pending is not None:
            # Secondary miss: merged into the pending MSHR, no new DRAM
            # traffic, but the data was not on-chip -> counts as a miss.
            return max(cycle + self.hit_latency, pending), cycle
        self.stats.dram_read_bytes[tag] += self.line_bytes
        return self._read_miss(cycle, addr, cls, tag)

    def _read_miss(
        self, cycle: float, addr: int, cls: str, tag: str
    ) -> Tuple[float, float]:
        """Primary-miss machinery in a single frame: MSHR acquire, DRAM
        fetch, miss registration, line insertion (with any evictions the
        insertion needs, via :meth:`_insert`'s flat victim scan).

        Equivalent to ``_acquire_mshr`` + ``DRAM.read`` + ``_insert``
        minus the hit/miss/byte counters, which are the caller's (the
        batched engine folds them into one update per address batch;
        :meth:`read` pays them up front).
        """
        outstanding = self._outstanding
        fifo = self._mshr_fifo
        issue = float(cycle)
        # Retire completed misses.  FIFO order == ready order: each
        # registered miss has ready strictly greater than its
        # predecessor's, so popping the front is popping the minimum.
        while fifo and fifo[0][0] <= issue:
            _, a = fifo.popleft()
            del outstanding[a]
        limit = self.mshr_entries
        while len(outstanding) >= limit:
            ready, a = fifo.popleft()
            del outstanding[a]
            if ready > issue:
                issue = ready
        dram = self.dram
        start = dram.next_free
        if issue > start:
            start = issue
        end = start + self._line_cost
        dram.next_free = end
        ready = end + self._read_latency
        outstanding[addr] = ready
        fifo.append((ready, addr))
        self._insert(issue, addr, cls, dirty=False, ready=ready)
        return ready, issue

    def write(
        self, cycle: float, addr: int, cls: str, tag: str, allocate: bool = True
    ) -> float:
        """Full-line write (no fetch needed).

        ``allocate=False`` is write-through/no-allocate: the line goes
        straight to DRAM, which is how streaming outputs (RWP final
        results) avoid polluting the buffer.
        """
        slot = self._slot_of.get(addr)
        if slot is not None:
            self.stats.buffer_hits[tag] += 1
            self._slot_dirty[slot] = True
            ready = cycle + self.hit_latency
            if ready > self._slot_ready[slot]:
                self._slot_ready[slot] = ready
                if ready > self._max_ready:
                    self._max_ready = ready
            if self.lru:
                self._lru_ods[self._slot_cls[slot]].move_to_end(slot)
            return cycle + self.hit_latency
        self.stats.buffer_misses[tag] += 1
        if allocate:
            self._insert(cycle, addr, cls, dirty=True, ready=cycle + self.hit_latency)
            return cycle + self.hit_latency
        self.dram.write(cycle, self.line_bytes, tag)
        return cycle + self.hit_latency

    def accumulate(self, cycle: float, addr: int, tag: str = CLASS_PARTIAL) -> float:
        """Merge one partial output into the buffer (near-memory adder).

        If the line was previously spilled, its DRAM copy is fetched and
        re-merged (demand read).  Footprint tracking feeds Fig. 10.
        """
        self.stats.partials_produced += 1
        slot = self._slot_of.get(addr)
        if slot is not None:
            self.stats.buffer_hits[tag] += 1
            self._slot_dirty[slot] = True
            ready = cycle + self.hit_latency
            if ready > self._slot_ready[slot]:
                self._slot_ready[slot] = ready
                if ready > self._max_ready:
                    self._max_ready = ready
            if self.lru:
                self._lru_ods[self._slot_cls[slot]].move_to_end(slot)
            self._update_partial_peak()
            return cycle + self.hit_latency
        self.stats.buffer_misses[tag] += 1
        if addr in self._spilled_partials:
            issue = self._acquire_mshr(cycle)
            ready = self.dram.read(issue, self.line_bytes, tag)
            self._spilled_partials.discard(addr)
            self._insert(issue, addr, CLASS_PARTIAL, dirty=True, ready=ready)
            self._update_partial_peak()
            if self.tracer.enabled:
                self.tracer.instant(
                    "partial.refetch", issue, "buffer", {"addr": addr}
                )
            return ready
        self._insert(cycle, addr, CLASS_PARTIAL, dirty=True, ready=cycle + self.hit_latency)
        self._update_partial_peak()
        return cycle + self.hit_latency

    def flush(self, cycle: float, cls: Optional[str] = None, tag: Optional[str] = None) -> float:
        """Write back and drop lines (all classes, or one).

        Returns the cycle the last writeback finishes transferring.
        Clean lines are dropped silently.  Lines retire in LRU order
        within each class (the class list's front-to-back order -- the
        order the legacy per-class map iterated).
        """
        end = float(cycle)
        size_before = self._size
        classes = [cls] if cls is not None else list(self.evict_priority)
        slot_of = self._slot_of
        slot_addr = self._slot_addr
        slot_dirty = self._slot_dirty
        free = self._free_slots
        for c in classes:
            ci = CLASS_INDEX[c]
            if not self._class_count[ci]:
                continue
            od = self._lru_ods[ci]
            write_tag = tag or c
            is_partial = ci == _PARTIAL_IDX
            for slot in od:
                addr = slot_addr[slot]
                if slot_dirty[slot]:
                    end = self.dram.write(end, self.line_bytes, write_tag)
                    if is_partial:
                        self._spilled_partials.add(addr)
                del slot_of[addr]
                free.append(slot)
            od.clear()
            self._size -= self._class_count[ci]
            self._class_count[ci] = 0
        if self.tracer.enabled:
            self.tracer.span(
                "buffer.flush", cycle, end, "buffer",
                {"cls": cls or "all", "lines": size_before - self._size},
            )
        return end

    def invalidate(self, cls: str) -> int:
        """Drop all lines of a class *without* writeback.

        Used between phases/layers for data that is dead (e.g. XW after
        the aggregation that consumed it).  Returns lines dropped.
        """
        ci = CLASS_INDEX[cls]
        n = self._class_count[ci]
        if not n:
            return 0
        slot_of = self._slot_of
        slot_addr = self._slot_addr
        free = self._free_slots
        od = self._lru_ods[ci]
        for slot in od:
            del slot_of[slot_addr[slot]]
            free.append(slot)
        od.clear()
        self._class_count[ci] = 0
        self._size -= n
        if self.tracer.enabled:
            # invalidate() takes no cycle; DRAM's next-free slot is the
            # closest monotone proxy for "now" the buffer can see.
            self.tracer.instant(
                "buffer.invalidate", self.dram.next_free, "buffer",
                {"cls": cls, "lines": n},
            )
        return n

    def reclassify(self, from_cls: str, to_cls: str, cycle: float = 0.0) -> int:
        """Relabel all lines of one class as another, preserving LRU order.

        Used when partial outputs become final values (e.g. XW built by
        an outer-product combination): the data stays resident but now
        follows the destination class's eviction priority.  ``cycle`` is
        unused here but kept for interface parity with the split-buffer
        organisation, where reclassification costs writebacks.  The
        relabelled lines land at the destination's MRU end in source
        LRU order -- exactly the legacy "append the source map onto the
        destination map" splice.
        """
        src_ci = CLASS_INDEX[from_cls]
        dst_ci = CLASS_INDEX[to_cls]
        n = self._class_count[src_ci]
        if n == 0 or src_ci == dst_ci:
            return n
        slot_cls = self._slot_cls
        src_od = self._lru_ods[src_ci]
        dst_od = self._lru_ods[dst_ci]
        for slot in src_od:
            slot_cls[slot] = dst_ci
            dst_od[slot] = None
        src_od.clear()
        self._class_count[dst_ci] += n
        self._class_count[src_ci] = 0
        if self.tracer.enabled:
            self.tracer.instant(
                "buffer.reclassify", cycle, "buffer",
                {"from": from_cls, "to": to_cls, "lines": n},
            )
        return n

    def drop_spilled_partials(self) -> int:
        """Forget spill bookkeeping between phases; returns count dropped."""
        n = len(self._spilled_partials)
        self._spilled_partials.clear()
        return n

    # ------------------------------------------------------------------
    # State snapshot / restore (trace replay)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """JSON-able snapshot of all timing-relevant buffer state.

        Captures, per class, the resident lines in LRU order (front =
        LRU) as ``[addr, dirty, ready]`` triples, plus the spilled
        partial set, the MSHR file in acquisition order, the ready
        watermark, and the current eviction priority.  Slot *numbers*
        are deliberately not captured: they never influence timing or
        stats, only which arena row a line happens to occupy, so
        :meth:`restore_state` is free to repack the arena.  All floats
        in play are dyadic rationals (sums of powers of two), so JSON
        round-trips them exactly.
        """
        slot_addr = self._slot_addr
        slot_dirty = self._slot_dirty
        slot_ready = self._slot_ready
        lines = {
            cls: [
                [slot_addr[s], slot_dirty[s], slot_ready[s]]
                for s in self._lru_ods[CLASS_INDEX[cls]]
            ]
            for cls in ALL_CLASSES
        }
        return {
            "lines": lines,
            "spilled_partials": sorted(self._spilled_partials),
            "mshr_fifo": [[ready, addr] for ready, addr in self._mshr_fifo],
            "max_ready": self._max_ready,
            "evict_priority": list(self._evict_priority),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild the buffer from a :meth:`snapshot_state` snapshot.

        The arena is repacked from scratch (slot numbering is not part
        of the snapshot; see there), every list mutated in place so the
        bindings captured by ``_evict_ctx`` -- and any hoisted by the
        batched engine between calls -- stay valid.
        """
        self._slot_of.clear()
        for od in self._lru_ods:
            od.clear()
        self._free_slots[:] = range(self.capacity_lines - 1, -1, -1)
        self._class_count[:] = [0] * _N_CLASSES
        self._size = 0
        free = self._free_slots
        slot_cls = self._slot_cls
        slot_dirty = self._slot_dirty
        slot_ready = self._slot_ready
        slot_addr = self._slot_addr
        lines: Dict[str, List[List[object]]] = state["lines"]  # type: ignore[assignment]
        for cls, entries in lines.items():
            ci = CLASS_INDEX[cls]
            od = self._lru_ods[ci]
            for addr, dirty, ready in entries:
                slot = free.pop()
                slot_cls[slot] = ci
                slot_dirty[slot] = bool(dirty)
                slot_ready[slot] = float(ready)  # type: ignore[arg-type]
                slot_addr[slot] = int(addr)  # type: ignore[call-overload]
                od[slot] = None
                self._slot_of[int(addr)] = slot  # type: ignore[call-overload]
            self._class_count[ci] = len(entries)
            self._size += len(entries)
        self._spilled_partials.clear()
        self._spilled_partials.update(
            int(a) for a in state["spilled_partials"]  # type: ignore[union-attr]
        )
        self._outstanding.clear()
        self._mshr_fifo.clear()
        for ready, addr in state["mshr_fifo"]:  # type: ignore[union-attr]
            r, a = float(ready), int(addr)
            self._outstanding[a] = r
            self._mshr_fifo.append((r, a))
        self._max_ready = float(state["max_ready"])  # type: ignore[arg-type]
        self.evict_priority = tuple(state["evict_priority"])  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _touch_slot(self, slot: int) -> None:
        """Mark a resident slot most-recently-used (one list splice)."""
        self._lru_ods[self._slot_cls[slot]].move_to_end(slot)

    def _acquire_mshr(self, cycle: float) -> float:
        """Wait for a free MSHR; returns the (possibly delayed) issue cycle."""
        issue = float(cycle)
        fifo = self._mshr_fifo
        outstanding = self._outstanding
        # Retire completed misses (FIFO front is the earliest ready).
        while fifo and fifo[0][0] <= issue:
            _, addr = fifo.popleft()
            del outstanding[addr]
        while len(outstanding) >= self.mshr_entries:
            ready, addr = fifo.popleft()
            del outstanding[addr]
            if ready > issue:
                issue = ready
        return issue

    def _insert(self, cycle: float, addr: int, cls: str, dirty: bool, ready: float) -> None:
        """Allocate one line, evicting until there is room.

        Victims come from the lowest-priority non-empty class, LRU
        within: one ``popitem(last=False)`` off the class list -- O(1),
        no scanning.  The whole pop/evict/insert sequence runs in this
        one frame -- the writeback arithmetic is bit-identical to
        ``DRAM.write`` via the precomputed ``_line_cost``.
        """
        try:
            ci = CLASS_INDEX[cls]
        except KeyError:
            raise ValueError(f"unknown line class {cls!r}") from None
        slot_of = self._slot_of
        free = self._free_slots
        counts = self._class_count
        ods = self._lru_ods
        size = self._size
        if size >= self.capacity_lines:
            (
                stats,
                dram,
                nbytes,
                line_cost,
                capacity,
                slot_addr,
                slot_dirty,
                _,
            ) = self._evict_ctx
            while size >= capacity:
                for vc in self._evict_order:
                    if counts[vc]:
                        victim, _ = ods[vc].popitem(last=False)
                        a = slot_addr[victim]
                        del slot_of[a]
                        counts[vc] -= 1
                        size -= 1
                        free.append(victim)
                        if slot_dirty[victim]:
                            c = ALL_CLASSES[vc]
                            stats.dram_write_bytes[c] += nbytes
                            start = dram.next_free
                            if cycle > start:
                                start = cycle
                            dram.next_free = start + line_cost
                            if vc == _PARTIAL_IDX:
                                self._spilled_partials.add(a)
                                stats.partial_spill_bytes += nbytes
                        break
                else:
                    raise RuntimeError("evict called on an empty buffer")
        slot = free.pop()
        self._slot_cls[slot] = ci
        self._slot_dirty[slot] = dirty
        self._slot_ready[slot] = ready
        self._slot_addr[slot] = addr
        ods[ci][slot] = None
        slot_of[addr] = slot
        counts[ci] += 1
        self._size = size + 1
        if ready > self._max_ready:
            self._max_ready = ready

    def _plan_victims(self, ci: int, want: int) -> List[int]:
        """Victim slots available to an epoch of class-``ci`` inserts.

        Mirrors :meth:`_insert`'s flat victim scan unrolled over up to
        ``want`` evictions: victims drain the per-class LRU *prefixes*
        in eviction-priority order.  The walk stops after class ``ci``'s
        own pre-existing lines -- one eviction further and the flat scan
        would start victimizing lines the epoch itself inserted (they
        sit at ``ci``'s MRU end), which is exactly where the epoch must
        cut.  Classes behind ``ci`` in the priority order are
        unreachable once the epoch has inserted its first line
        (``ci`` is then non-empty), so stopping early only ever
        *shortens* an epoch, never mis-orders a victim.

        Returns at most ``want`` slots, in the exact order the flat
        scan would evict them.  No state is modified.
        """
        counts = self._class_count
        out: List[int] = []
        for vc in self._evict_order:
            cnt = counts[vc]
            if cnt:
                need = want - len(out)
                if cnt >= need:
                    out.extend(islice(self._lru_ods[vc], need))
                    return out
                out.extend(self._lru_ods[vc])
            if vc == ci:
                break
        return out

    def _commit_epoch(
        self,
        ci: int,
        run: List[int],
        readies: List[float],
        victims: Sequence[int],
        victim_dirty: Sequence[bool],
        fill_dirty: bool,
    ) -> None:
        """Bulk-apply one miss epoch's evictions and fills to the arena.

        ``run``/``readies`` are the inserted addresses and their ready
        times in insert order; ``victims`` the pre-planned victim slots
        (see :meth:`_plan_victims`) with their dirty flags.  The caller
        has already played the epoch's *timing* -- MSHR stalls, DRAM
        channel occupancy including dirty-victim writebacks -- so this
        frame only moves state: victim removal, writeback/spill stats
        (one reduction per class), then the fills as C-level ``map``
        sweeps over the parallel slot arrays plus one ``update`` splice
        per dict.  Slot assignment replays ``_insert`` exactly: the
        first ``len(free)`` fills pop the free stack top-down, each
        remaining fill reuses the slot its own eviction just freed.
        """
        slot_of = self._slot_of
        slot_addr = self._slot_addr
        free = self._free_slots
        ods = self._lru_ods
        counts = self._class_count
        m = len(run)
        if victims:
            slot_cls = self._slot_cls
            stats = self.stats
            spilled = self._spilled_partials
            nbytes = self.line_bytes
            wb = [0] * _N_CLASSES
            spill_n = 0
            for s, dirty in zip(victims, victim_dirty):
                vc = slot_cls[s]
                del ods[vc][s]
                del slot_of[slot_addr[s]]
                counts[vc] -= 1
                if dirty:
                    wb[vc] += 1
                    if vc == _PARTIAL_IDX:
                        spilled.add(slot_addr[s])
                        spill_n += 1
            for vc, cnt in enumerate(wb):
                if cnt:
                    stats.dram_write_bytes[ALL_CLASSES[vc]] += cnt * nbytes
            if spill_n:
                stats.partial_spill_bytes += spill_n * nbytes
            new_slots = free[::-1]
            new_slots.extend(victims)
            free.clear()
        else:
            new_slots = free[-m:]
            new_slots.reverse()
            del free[-m:]
        _drain(map(self._slot_cls.__setitem__, new_slots, repeat(ci)))
        _drain(map(self._slot_dirty.__setitem__, new_slots, repeat(fill_dirty)))
        _drain(map(self._slot_ready.__setitem__, new_slots, readies))
        _drain(map(slot_addr.__setitem__, new_slots, run))
        ods[ci].update(zip(new_slots, repeat(None)))
        slot_of.update(zip(run, new_slots))
        counts[ci] += m
        self._size += m - len(victims)
        last = readies[m - 1]
        if last > self._max_ready:
            self._max_ready = last

    def _commit_hit_epoch(self, slots: List[int], readies: List[float]) -> None:
        """Bulk-apply one store-hit run to the arena.

        ``slots``/``readies`` are the (distinct) resident slots a hit
        epoch wrote and their store-ready times in run order.  The
        per-hit mutations commute into three bulk sweeps: every slot is
        marked dirty, its ready is raised to ``max(old, store_ready)``
        (a write never lowers a ready), and each slot takes one LRU
        splice in run order -- the same final recency order as the
        sequential per-hit touches, because a run's slots are distinct
        and each ends at the MRU tail of its class the moment its frame
        completes.  ``readies`` is monotone (the write timeline only
        moves forward), so the watermark update needs only the last
        element: any epoch ready above the old watermark was
        necessarily written (old slot readies never exceed it).
        """
        slot_ready = self._slot_ready
        _drain(map(self._slot_dirty.__setitem__, slots, repeat(True)))
        mr = self._max_ready
        if mr <= readies[0]:
            # Every pre-epoch slot ready is bounded by the watermark,
            # which the whole monotone readies run dominates -- the
            # per-slot max is always the new value, one C-level sweep.
            _drain(map(slot_ready.__setitem__, slots, readies))
        else:
            _drain(
                map(
                    slot_ready.__setitem__,
                    slots,
                    map(max, map(slot_ready.__getitem__, slots), readies),
                )
            )
        if self.lru:
            cls_arr = self._slot_cls
            c0 = cls_arr[slots[0]]
            if self._class_count[c0] == self._size:
                # One class owns every resident line, so every run slot
                # is that class: one C-level sweep of splices.
                _drain(map(self._lru_mte[c0], slots))
            else:
                mtes = self._lru_mte
                for s in slots:
                    mtes[cls_arr[s]](s)
        last = readies[-1]
        if last > mr:
            self._max_ready = last

    def _update_partial_peak(self) -> None:
        footprint = (
            self._class_count[_PARTIAL_IDX] + len(self._spilled_partials)
        ) * self.line_bytes
        if footprint > self.stats.partial_peak_bytes:
            self.stats.partial_peak_bytes = footprint
        self.stats.sample_partial_footprint(footprint)
