"""Dataset persistence (.npz) and edge-list import."""

import numpy as np
import pytest

from repro.graphs.io import (
    dataset_from_edge_list,
    load_dataset_npz,
    read_edge_list,
    save_dataset,
)
from repro.graphs.synthetic import sparse_feature_matrix


class TestNpzRoundtrip:
    def test_roundtrip_preserves_everything(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.npz"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset_npz(path)
        assert loaded.name == tiny_dataset.name
        assert loaded.hidden_dim == tiny_dataset.hidden_dim
        assert loaded.scale == tiny_dataset.scale
        assert loaded.adjacency.allclose(tiny_dataset.adjacency)
        np.testing.assert_array_equal(
            loaded.features.indptr, tiny_dataset.features.indptr
        )
        np.testing.assert_allclose(
            loaded.features.values, tiny_dataset.features.values
        )

    def test_loaded_dataset_is_usable(self, tiny_dataset, tmp_path):
        from repro import GCNModel, HyMMAccelerator

        path = tmp_path / "tiny.npz"
        save_dataset(tiny_dataset, path)
        model = GCNModel(load_dataset_npz(path), n_layers=1, seed=0)
        result = HyMMAccelerator().run_inference(model)
        assert result.stats.cycles > 0

    def test_version_check(self, tiny_dataset, tmp_path):
        path = tmp_path / "tiny.npz"
        save_dataset(tiny_dataset, path)
        data = dict(np.load(path, allow_pickle=False))
        data["version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_dataset_npz(path)


class TestEdgeList:
    def _write(self, tmp_path, text):
        path = tmp_path / "graph.txt"
        path.write_text(text)
        return path

    def test_basic_parse(self, tmp_path):
        adj = read_edge_list(self._write(tmp_path, "0 1\n1 2\n"))
        assert adj.shape == (3, 3)
        assert adj.nnz == 4  # undirected mirroring

    def test_directed(self, tmp_path):
        adj = read_edge_list(self._write(tmp_path, "0 1\n1 2\n"), undirected=False)
        assert adj.nnz == 2

    def test_comments_and_blank_lines(self, tmp_path):
        adj = read_edge_list(self._write(tmp_path, "# header\n\n0 1\n# more\n1 2\n"))
        assert adj.nnz == 4

    def test_self_loops_dropped(self, tmp_path):
        adj = read_edge_list(self._write(tmp_path, "0 0\n0 1\n"))
        assert adj.nnz == 2

    def test_duplicates_binary(self, tmp_path):
        adj = read_edge_list(self._write(tmp_path, "0 1\n0 1\n1 0\n"))
        assert adj.nnz == 2
        assert np.all(adj.values == 1.0)

    def test_extra_columns_ignored(self, tmp_path):
        adj = read_edge_list(self._write(tmp_path, "0 1 0.5\n"))
        assert adj.nnz == 2

    def test_gap_node_ids(self, tmp_path):
        adj = read_edge_list(self._write(tmp_path, "0 5\n"))
        assert adj.shape == (6, 6)

    def test_malformed_line(self, tmp_path):
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(self._write(tmp_path, "0\n"))

    def test_negative_id(self, tmp_path):
        with pytest.raises(ValueError, match="negative"):
            read_edge_list(self._write(tmp_path, "-1 2\n"))

    def test_empty_file(self, tmp_path):
        adj = read_edge_list(self._write(tmp_path, "# nothing\n"))
        assert adj.shape == (0, 0)


class TestDatasetFromEdgeList:
    def test_synthesises_features(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 3\n3 0\n")
        ds = dataset_from_edge_list(path, feature_length=32, feature_density=0.5)
        assert ds.n_nodes == 4
        assert ds.feature_length == 32
        assert ds.name == "g"

    def test_explicit_features(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        feats = sparse_feature_matrix(3, 8, 0.5, seed=1)
        ds = dataset_from_edge_list(path, features=feats, name="custom")
        assert ds.feature_length == 8
        assert ds.name == "custom"

    def test_empty_graph_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# empty\n")
        with pytest.raises(ValueError, match="no edges"):
            dataset_from_edge_list(path)
