"""Decoupled access/execute engine.

Models the HyMM pipeline of SMQ -> LSQ -> PE array (Sections IV-A..C)
at vector-op granularity:

* the **frontend** (SMQ feeding the LSQ) issues one memory request per
  cycle and may run ahead of the backend by up to ``lsq_depth``
  requests -- exactly the latency-hiding role the paper gives the LSQ
  ("while a missed load instruction waits ... subsequent load
  instructions can continue execution");
* the **backend** (the 16-MAC PE array) executes one scalar x vector
  MAC per cycle, in order, waiting when its operand has not arrived;
* **store-to-load forwarding**: a load whose address matches a recent
  store is served from the LSQ without touching the DMB (Section IV-B);
  the forwarding window is the LSQ's 128 entries;
* the sparse operand itself (pointers + indices + values) arrives as an
  SMQ **stream** that charges DRAM bandwidth; the stream can throttle
  the frontend when bandwidth saturates, but its latency is hidden by
  the SMQ's pointer/index buffers.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.sim.buffer import CacheBuffer
from repro.sim.memory import DRAM
from repro.sim.stats import SimStats


class AccessExecuteEngine:
    """One in-order decoupled pipeline over a shared memory hierarchy."""

    def __init__(
        self,
        buffer: CacheBuffer,
        dram: DRAM,
        stats: SimStats,
        lsq_depth: int = 128,
        forwarding: bool = True,
        smq_buffer_bytes: int = 16 * 1024,
        start_cycle: float = 0.0,
    ):
        if lsq_depth <= 0:
            raise ValueError("lsq_depth must be positive")
        self.buffer = buffer
        self.dram = dram
        self.stats = stats
        self.lsq_depth = lsq_depth
        self.forwarding = forwarding
        # Frontend slack granted by the SMQ's on-chip stream buffers.
        self._stream_slack = smq_buffer_bytes / dram.config.bytes_per_cycle
        #: Frontend load timeline: when the next read request can issue
        #: (the DMB's read queue accepts one request per cycle).
        self.issue_t = float(start_cycle)
        #: Store timeline: the DMB's *write queue* is a separate port
        #: (Fig. 3 shows distinct read/write queues), so stores and
        #: accumulator traffic do not steal load-issue slots.
        self.write_t = float(start_cycle)
        #: Backend timeline: when the PE array finishes its last op.
        self.exec_t = float(start_cycle)
        # Ring of backend completion times, one slot per LSQ entry: the
        # frontend reuses a slot only after the backend consumed it.
        self._ring = [float(start_cycle)] * lsq_depth
        self._k = 0
        # Store-to-load forwarding window (bounded by LSQ depth).
        self._store_map: OrderedDict = OrderedDict()

    # ------------------------------------------------------------------
    # Compute + memory primitives
    # ------------------------------------------------------------------
    def mac_load(self, addr: int, cls: str, tag: str) -> None:
        """One vector MAC whose dense operand is loaded from memory."""
        self.stats.requests_issued += 1
        slot = self._ring[self._k % self.lsq_depth]
        issue = max(self.issue_t + 1.0, slot)
        forwarded = self.forwarding and addr in self._store_map
        if forwarded:
            ready = max(issue, self._store_map[addr])
            self.stats.lsq_forwards += 1
        else:
            ready, issue = self.buffer.read(issue, addr, cls, tag)
        self.issue_t = issue
        self.exec_t = max(self.exec_t + 1.0, ready)
        self._ring[self._k % self.lsq_depth] = self.exec_t
        self._k += 1
        self.stats.busy_cycles += 1

    def mac_stream_load(self, addr: int, cls: str, tag: str) -> None:
        """One vector MAC whose operand arrives on a *sequential* stream.

        OP-mode engines consume dense rows in ascending order ("The OP
        architecture involves sequential input reads", Section III), so
        a streaming prefetcher fetches them without occupying MSHRs or
        paying per-access latency.  If the line is already on-chip it is
        read from the buffer (a hit); otherwise it streams from DRAM --
        counted as a miss (the data was off-chip) but charged only
        bandwidth.  Streamed lines are not allocated: the PE stationary
        buffer holds them and they have no further reuse this pass.
        """
        if self.buffer.contains(addr):
            self.mac_load(addr, cls, tag)
            return
        self.stats.requests_issued += 1
        self.stats.buffer_misses[tag] += 1
        self.issue_t += 1.0
        end = self.dram.stream_read(self.issue_t, self.buffer.line_bytes, tag)
        throttled = end - self._stream_slack
        if throttled > self.issue_t:
            self.issue_t = throttled
        self.exec_t = max(self.exec_t + 1.0, self.issue_t)
        self.stats.busy_cycles += 1

    def load(self, addr: int, cls: str, tag: str) -> None:
        """Fetch one vector without issuing a MAC (the consuming ALU op
        follows separately, e.g. the add of a PE-side read-modify-write).
        The backend waits for the data but records no busy cycle."""
        self.stats.requests_issued += 1
        slot = self._ring[self._k % self.lsq_depth]
        issue = max(self.issue_t + 1.0, slot)
        if self.forwarding and addr in self._store_map:
            ready = max(issue, self._store_map[addr])
            self.stats.lsq_forwards += 1
        else:
            ready, issue = self.buffer.read(issue, addr, cls, tag)
        self.issue_t = issue
        self.exec_t = max(self.exec_t, ready)
        self._ring[self._k % self.lsq_depth] = self.exec_t
        self._k += 1

    def mac_local(self, n: int = 1) -> None:
        """``n`` vector MACs on operands already held in the PE
        stationary buffers (no memory request)."""
        self.exec_t += n
        self.stats.busy_cycles += n

    def alu_op(self, n: int = 1) -> None:
        """``n`` PE-array cycles of non-MAC ALU work (e.g. merge adds);
        counts as busy (the adder is doing useful work)."""
        self.exec_t += n
        self.stats.busy_cycles += n

    def wait_until(self, cycle: float) -> None:
        """Stall the backend until ``cycle`` (if it is in the future)."""
        if cycle > self.exec_t:
            self.exec_t = cycle

    def store(self, addr: int, cls: str, tag: str, allocate: bool = True) -> None:
        """Store one result vector through the LSQ into the DMB.

        The store occupies an LSQ slot at issue time but does *not*
        block the frontend until the data exists: the LSQ holds the
        entry and performs the write once the producing op completes
        (the paper's LSQ explicitly decouples stores this way).
        ``allocate=False`` streams it to DRAM (write-through,
        no-allocate) -- used for outputs with no expected reuse.
        """
        self.stats.requests_issued += 1
        slot = self._ring[self._k % self.lsq_depth]
        issue = max(self.write_t + 1.0, slot)
        # The buffer/DRAM see the request at its (monotone) issue time;
        # the LSQ entry is held until the producing op's data exists.
        self.buffer.write(issue, addr, cls, tag, allocate=allocate)
        self.write_t = issue
        self._ring[self._k % self.lsq_depth] = max(issue + 1.0, self.exec_t)
        self._k += 1
        self._record_store(addr, self.exec_t)

    def accumulate_store(self, addr: int, tag: str = "partial") -> None:
        """Emit one partial output to the DMB's near-memory accumulator.

        The add happens at the buffer, not in the PE array, so the
        backend does not stall; the request still occupies an LSQ slot
        and the DMB's write queue.
        """
        self.stats.requests_issued += 1
        slot = self._ring[self._k % self.lsq_depth]
        issue = max(self.write_t + 1.0, slot)
        self.buffer.accumulate(issue, addr, tag)
        self.write_t = issue
        self._ring[self._k % self.lsq_depth] = max(issue + 1.0, self.exec_t)
        self._k += 1
        self._record_store(addr, self.exec_t)

    def rmw(self, addr: int, cls: str, tag: str) -> None:
        """Read-modify-write of one output vector *through the PE array*
        (the no-near-memory-accumulator way to merge a partial output):
        load the current value, spend an adder cycle, store it back."""
        self.load(addr, cls, tag)
        self.alu_op(1)
        self.store(addr, cls, tag, allocate=True)

    def stream(self, nbytes: int, tag: str) -> None:
        """Consume ``nbytes`` of an SMQ-prefetched sequential stream.

        Charges DRAM bandwidth; throttles the frontend only if the
        stream falls more than one SMQ buffer behind the consumption
        point.
        """
        end = self.dram.stream_read(self.issue_t, nbytes, tag)
        throttled = end - self._stream_slack
        if throttled > self.issue_t:
            self.issue_t = throttled

    # ------------------------------------------------------------------
    def drain(self) -> float:
        """Finish in-flight work; returns the final cycle of this engine."""
        return max(self.issue_t, self.write_t, self.exec_t)

    def _record_store(self, addr: int, ready: float) -> None:
        if not self.forwarding:
            return
        self._store_map[addr] = ready
        self._store_map.move_to_end(addr)
        while len(self._store_map) > self.lsq_depth:
            self._store_map.popitem(last=False)
