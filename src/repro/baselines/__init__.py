"""Baseline dataflow accelerators.

The paper compares HyMM against homogeneous dataflows on the same
memory hierarchy: "The RWP dataflow represents GROW [21], and the OP
architecture represents GCNAX [19]."  This package provides those
proxies plus a column-wise-product accelerator in the spirit of
AWB-GCN [17] as an extension baseline:

* :class:`RWPAccelerator` -- row-wise product everywhere (GROW-proxy);
* :class:`OPAccelerator` -- outer product everywhere (GCNAX-proxy);
  its ``merge_mode`` selects how partial outputs merge (``"pe"``
  read-modify-write by default, ``"deferred"`` for the OuterSpace-style
  two-phase organisation used in the Figure 10 comparison);
* :class:`CWPAccelerator` -- column-wise product with PE-local
  accumulators (AWB-GCN-style extension).
"""

from repro.baselines.rwp import RWPAccelerator
from repro.baselines.op import OPAccelerator
from repro.baselines.op_tiled import TiledOPAccelerator
from repro.baselines.cwp import CWPAccelerator
from repro.baselines.gcod import GCoDAccelerator

__all__ = [
    "RWPAccelerator",
    "OPAccelerator",
    "TiledOPAccelerator",
    "CWPAccelerator",
    "GCoDAccelerator",
]
