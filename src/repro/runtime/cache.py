"""Persistent on-disk result cache keyed by job fingerprint.

Two layouts share one record format (``{"fingerprint", "spec",
"result", ...}``, one JSON file per simulated point):

:class:`ResultCache` (flat)::

    <cache_dir>/
        <fingerprint>.json
        manifests/              # sweep manifests (written by the CLI)

:class:`ShardedResultCache` (two-level hash-prefix directories, built
for many concurrent writers -- e.g. several serve workers or several
hosts sharing one cache over a network filesystem)::

    <cache_dir>/
        <fp[0:2]>/<fp[2:4]>/<fingerprint>.json

The sharded cache *transparently migrates* a flat layout: a lookup that
misses the sharded path but finds the flat record moves it into its
shard (atomic same-filesystem ``os.replace``) and serves it, so
pointing the serve front end at an existing flat cache directory warms
it in place -- no offline conversion, and racing migrators are safe
(the loser of the ``os.replace`` race simply re-reads the sharded
path).

Invalidation rules (both layouts):

* the fingerprint already encodes the job schema version and the
  ``repro`` package version, so upgrading either simply stops hitting
  old records;
* a record whose embedded ``RunResult`` schema version no longer
  matches the code is treated as a miss and evicted;
* unreadable/corrupt records (truncated writes, bad JSON, missing
  keys) are evicted on first touch and counted in
  :attr:`ResultCache.corrupt` -- a damaged cache degrades to cold, it
  never fails a run.

Writes go through a temp file in the record's *own* directory +
``os.replace``, so a concurrent reader (or a killed writer) can never
observe a partial record, and two writers racing the same key resolve
last-writer-wins with no torn JSON.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
import time
from typing import Dict, Iterator, Optional

from repro.hymm.base import RunResult
from repro.runtime.job import SCHEMA_VERSION, JobSpec


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/hymm-repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env).expanduser()
    return pathlib.Path.home() / ".cache" / "hymm-repro"


class ResultCache:
    """Disk-backed map ``JobSpec fingerprint -> RunResult``."""

    def __init__(self, cache_dir: "Optional[os.PathLike[str]]" = None) -> None:
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir else default_cache_dir()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        #: Counters since construction (surfaced in manifests).  The
        #: serve front end probes the cache from worker threads
        #: (``asyncio.to_thread``) while its event loop renders
        #: ``stats()``, so every counter update takes the lock --
        #: ``+=`` alone is a non-atomic read-modify-write.
        self._counter_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    def _path(self, fingerprint: str) -> pathlib.Path:
        return self.cache_dir / f"{fingerprint}.json"

    def contains(self, spec: JobSpec) -> bool:
        return self._path(spec.fingerprint()).exists()

    def load(self, spec: JobSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or ``None`` (miss).

        Records that cannot be parsed or no longer match the current
        result schema are evicted and reported as misses.
        """
        path = self._path(spec.fingerprint())
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
            result = RunResult.from_dict(record["result"])
        except FileNotFoundError:
            with self._counter_lock:
                self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            with self._counter_lock:
                self.corrupt += 1
                self.misses += 1
            self._evict(path)
            return None
        with self._counter_lock:
            self.hits += 1
        return result

    def store(self, spec: JobSpec, result: RunResult) -> pathlib.Path:
        """Atomically persist one result; returns the record path.

        The temp file lives in the record's own directory, so the final
        ``os.replace`` is a same-filesystem atomic rename: a reader can
        never see a partial record, and concurrent writers racing the
        same key resolve last-writer-wins (each publishes a complete
        record; whichever rename lands last sticks).
        """
        fingerprint = spec.fingerprint()
        path = self._path(fingerprint)
        spec_doc = spec.to_dict()
        # Cache records are content-addressed and shared across
        # requests; the telemetry correlation ID of whichever request
        # happened to compute the result first does not belong in them.
        spec_doc.pop("corr_id", None)
        record = {
            "fingerprint": fingerprint,
            "schema_version": SCHEMA_VERSION,
            "created_unix": time.time(),
            "spec": spec_doc,
            "result": result.to_dict(),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh)
            os.replace(tmp_name, path)
        except BaseException:
            self._evict(pathlib.Path(tmp_name))
            raise
        with self._counter_lock:
            self.stores += 1
        return path

    # ------------------------------------------------------------------
    @staticmethod
    def _evict(path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _record_paths(self) -> Iterator[pathlib.Path]:
        """Every record file this layout owns (maintenance walks)."""
        return iter(self.cache_dir.glob("*.json"))

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for path in list(self._record_paths()):
            self._evict(path)
            removed += 1
        return removed

    def size(self) -> int:
        """Number of records currently on disk."""
        return sum(1 for _ in self._record_paths())

    def stats(self) -> Dict[str, int]:
        with self._counter_lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "corrupt": self.corrupt,
            }

    @property
    def hit_rate(self) -> float:
        """Hits over lookups since construction (0.0 before any)."""
        with self._counter_lock:
            lookups = self.hits + self.misses
            return self.hits / lookups if lookups else 0.0


class ShardedResultCache(ResultCache):
    """Result cache sharded into two-level hash-prefix directories.

    ``<fp[0:2]>/<fp[2:4]>/<fingerprint>.json`` spreads the records of a
    large cache over 65536 directories, keeping per-directory entry
    counts (and rename contention between concurrent writers on shared
    filesystems) bounded.  Reads fall back to -- and migrate -- the flat
    layout, so an existing :class:`ResultCache` directory can be
    adopted in place; see the module docstring for the race argument.
    """

    #: Hex characters consumed per directory level.
    PREFIX_WIDTH = 2
    #: Directory levels below the cache root.
    PREFIX_LEVELS = 2

    def __init__(self, cache_dir: "Optional[os.PathLike[str]]" = None) -> None:
        super().__init__(cache_dir)
        #: Flat-layout records adopted into shards by this instance.
        self.migrated = 0

    # ------------------------------------------------------------------
    def _path(self, fingerprint: str) -> pathlib.Path:
        shard = self.cache_dir
        for level in range(self.PREFIX_LEVELS):
            lo = level * self.PREFIX_WIDTH
            shard = shard / fingerprint[lo : lo + self.PREFIX_WIDTH]
        return shard / f"{fingerprint}.json"

    def _flat_path(self, fingerprint: str) -> pathlib.Path:
        return self.cache_dir / f"{fingerprint}.json"

    def _adopt_flat(self, fingerprint: str) -> None:
        """Move a flat-layout record into its shard, if one exists.

        Best-effort and race-safe: a concurrent migrator (or a writer
        publishing a fresh sharded record) may win; every failure mode
        leaves the caller to read whatever the sharded path now holds.
        """
        flat = self._flat_path(fingerprint)
        sharded = self._path(fingerprint)
        if sharded.exists() or not flat.exists():
            return
        try:
            sharded.parent.mkdir(parents=True, exist_ok=True)
            os.replace(flat, sharded)
        except OSError:
            return
        with self._counter_lock:
            self.migrated += 1

    # ------------------------------------------------------------------
    def contains(self, spec: JobSpec) -> bool:
        fingerprint = spec.fingerprint()
        return (
            self._path(fingerprint).exists()
            or self._flat_path(fingerprint).exists()
        )

    def load(self, spec: JobSpec) -> Optional[RunResult]:
        self._adopt_flat(spec.fingerprint())
        return super().load(spec)

    def stats(self) -> Dict[str, int]:
        out = super().stats()
        with self._counter_lock:
            out["migrated"] = self.migrated
        return out

    def _record_paths(self) -> Iterator[pathlib.Path]:
        """Sharded records plus any not-yet-migrated flat leftovers."""
        yield from self.cache_dir.glob("*.json")
        pattern = "/".join(["?" * self.PREFIX_WIDTH] * self.PREFIX_LEVELS)
        yield from self.cache_dir.glob(f"{pattern}/*.json")


class TraceStore(ShardedResultCache):
    """Sharded store for resolved phase-timing traces (record/replay).

    Keys are the 64-hex chained phase signatures
    :mod:`repro.sim.replay` computes (same alphabet as job
    fingerprints, so the two-level hash-prefix sharding applies
    unchanged); records are raw JSON dicts carrying the phase's
    resolved timing -- stats delta, output matrix, and post-phase
    simulator state.  Reuses the sharded layout, the atomic
    temp-file + ``os.replace`` writes, and the corrupt-record
    eviction of :class:`ShardedResultCache`; the ``JobSpec``-typed
    ``load``/``store`` surface of the result cache is not used here.
    Invalidation is structural: the signature chain hashes the trace
    schema version, the model fingerprint, and every timing-relevant
    config knob, so any change simply stops hitting old records.
    """

    def load_trace(self, sig: str) -> "Optional[Dict[str, object]]":
        """The stored trace record for ``sig``, or ``None`` (miss).

        Unreadable or non-object records are evicted and reported as
        misses, same degradation contract as the result cache.
        """
        path = self._path(sig)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
            if not isinstance(record, dict):
                raise ValueError("trace record is not a JSON object")
        except FileNotFoundError:
            with self._counter_lock:
                self.misses += 1
            return None
        except (json.JSONDecodeError, ValueError, OSError):
            with self._counter_lock:
                self.corrupt += 1
                self.misses += 1
            self._evict(path)
            return None
        with self._counter_lock:
            self.hits += 1
        return record

    def store_trace(self, sig: str, record: Dict[str, object]) -> pathlib.Path:
        """Atomically persist one trace record; returns the path."""
        path = self._path(sig)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh)
            os.replace(tmp_name, path)
        except BaseException:
            self._evict(pathlib.Path(tmp_name))
            raise
        with self._counter_lock:
            self.stores += 1
        return path
