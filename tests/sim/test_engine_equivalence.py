"""Scalar-vs-batched engine equivalence.

The batched engine is a pure performance fast path: for every kernel,
merge mode, and dataset it must produce *exactly* the ``SimStats`` the
scalar reference produces -- same cycle counts (float-for-float), same
traffic bytes, same hit/miss/forward tallies -- and bit-identical
numerical outputs.  These tests drive both engines over the same
inputs and diff the full stats dict.

Coverage:

* every kernel entry point (``combination_rwp``, ``combination_dense``,
  ``combination_op``, ``aggregation_rwp``, ``aggregation_op``,
  ``aggregation_hybrid``) under a buffer small enough to force
  evictions, spills, and partial-merge traffic;
* all three partial-merge modes (``dmb``, ``pe``, ``deferred``) on the
  outer-product kernels;
* three seeded registry datasets with different sparsity structure;
* full accelerator runs for HyMM and every baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gcn.model import GCNModel
from repro.graphs import load_dataset
from repro.hymm.accelerator import plan_regions
from repro.hymm.config import HyMMConfig
from repro.hymm.dmb import AddressMap, make_buffer
from repro.hymm.kernels import (
    MERGE_MODES,
    KernelContext,
    aggregation_hybrid,
    aggregation_op,
    aggregation_rwp,
    combination_dense,
    combination_op,
    combination_rwp,
)
from repro.hymm.pe import PEArray
from repro.hymm.smq import SparseMatrixQueue
from repro.runtime.execute import make_accelerator
from repro.sim.engine import ENGINE_KINDS, make_engine
from repro.sim.memory import DRAM
from repro.sim.stats import SimStats
from repro.sparse import coo_to_csc, coo_to_csr
from repro.graphs.preprocess import degree_sort

DATASETS = [
    ("cora", 0.1, 1),
    ("amazon-photo", 0.06, 2),
    ("coauthor-cs", 0.04, 3),
]

#: Small enough that every dataset overflows it: the interesting engine
#: behaviour (evictions, partial spills, refetches) all happens under
#: pressure.
SMALL_BUFFER = 16 * 1024


@pytest.fixture(scope="module", params=DATASETS, ids=lambda d: d[0])
def model(request):
    name, scale, seed = request.param
    return GCNModel(load_dataset(name, scale=scale, seed=seed), n_layers=1, seed=seed)


def build_ctx(engine_kind: str, unified: bool = True, layer: int = 0) -> KernelContext:
    cfg = HyMMConfig(
        dmb_bytes=SMALL_BUFFER, unified_buffer=unified, engine=engine_kind
    )
    stats = SimStats()
    dram = DRAM(cfg.dram, stats)
    buffer = make_buffer(cfg, dram, stats)
    engine = make_engine(
        engine_kind,
        buffer,
        dram,
        stats,
        lsq_depth=cfg.lsq_entries,
        forwarding=cfg.forwarding,
        smq_buffer_bytes=cfg.smq_bytes,
    )
    return KernelContext(
        cfg,
        engine,
        buffer,
        AddressMap(cfg),
        PEArray(cfg.n_pes),
        SparseMatrixQueue(cfg.smq_pointer_bytes, cfg.smq_index_bytes),
        layer=layer,
    )


def run_both(kernel_fn, model, layer=0, **kwargs):
    """Run ``kernel_fn(ctx, ...)`` under both engines; return the two
    (stats_dict, output) pairs after draining all in-flight traffic."""
    results = []
    for engine_kind in ENGINE_KINDS:
        ctx = build_ctx(engine_kind, layer=layer)
        out = kernel_fn(ctx, model, **kwargs)
        ctx.engine.drain()
        results.append((ctx.engine.stats.to_dict(), out))
    return results


def assert_equivalent(results):
    (scalar_stats, scalar_out), (batched_stats, batched_out) = results
    mismatched = {
        key: (scalar_stats[key], batched_stats.get(key))
        for key in scalar_stats
        if scalar_stats[key] != batched_stats.get(key)
    }
    assert sorted(scalar_stats) == sorted(batched_stats)
    assert not mismatched, f"stats diverged between engines: {mismatched}"
    np.testing.assert_array_equal(scalar_out, batched_out)


# ----------------------------------------------------------------------
# Kernel-level equivalence
# ----------------------------------------------------------------------
def test_combination_rwp(model):
    features = coo_to_csr(model.dataset.features.to_coo())
    weights = model.layers[0].weights

    def run(ctx, model):
        return combination_rwp(ctx, features, weights)

    assert_equivalent(run_both(run, model))


def test_combination_dense(model):
    rng = np.random.default_rng(7)
    dense_in = rng.standard_normal(
        (model.dataset.n_nodes, model.layers[0].weights.shape[0]), dtype=np.float32
    )
    weights = model.layers[0].weights

    def run(ctx, model):
        return combination_dense(ctx, dense_in, weights)

    # Dense combination consumes the *previous* layer's output rows, so
    # it only ever runs at layer >= 1.
    assert_equivalent(run_both(run, model, layer=1))


@pytest.mark.parametrize("merge_mode", MERGE_MODES)
def test_combination_op(model, merge_mode):
    features = coo_to_csc(model.dataset.features.to_coo())
    weights = model.layers[0].weights

    def run(ctx, model):
        return combination_op(ctx, features, weights, merge_mode=merge_mode)

    assert_equivalent(run_both(run, model))


def _xw(model) -> np.ndarray:
    rng = np.random.default_rng(11)
    h = model.layers[0].weights.shape[1]
    return rng.standard_normal((model.dataset.n_nodes, h), dtype=np.float32)


def test_aggregation_rwp(model):
    adj = coo_to_csr(model.norm_adj)
    xw = _xw(model)

    def run(ctx, model):
        return aggregation_rwp(ctx, adj, xw)

    assert_equivalent(run_both(run, model))


@pytest.mark.parametrize("merge_mode", MERGE_MODES)
def test_aggregation_op(model, merge_mode):
    adj = coo_to_csc(model.norm_adj)
    xw = _xw(model)

    def run(ctx, model):
        return aggregation_op(ctx, adj, xw, merge_mode=merge_mode)

    assert_equivalent(run_both(run, model))


def test_aggregation_hybrid(model):
    perm = degree_sort(model.dataset.adjacency).permutation
    sorted_norm = model.norm_adj.permute(row_perm=perm, col_perm=perm)
    plan = plan_regions(
        sorted_norm,
        hidden_dim=model.dataset.hidden_dim,
        dmb_bytes=SMALL_BUFFER,
        threshold_fraction=HyMMConfig().threshold_fraction,
        resident_fraction=HyMMConfig().resident_fraction,
    )
    n = sorted_norm.shape[0]
    low_rows = coo_to_csr(sorted_norm.submatrix(plan.threshold, n, 0, n))
    xw = _xw(model)

    def run(ctx, model):
        return aggregation_hybrid(ctx, plan, low_rows, xw)

    assert_equivalent(run_both(run, model))


# ----------------------------------------------------------------------
# Whole-accelerator equivalence (kernels in situ, multi-layer)
# ----------------------------------------------------------------------
ACCELERATOR_KINDS = ("op", "rwp", "cwp", "gcod", "op-deferred", "op-tiled", "hymm")


@pytest.mark.parametrize("kind", ACCELERATOR_KINDS)
def test_accelerator_equivalence(model, kind):
    runs = {}
    for engine_kind in ENGINE_KINDS:
        acc = make_accelerator(kind)
        acc.config = acc.config.with_overrides(
            dmb_bytes=SMALL_BUFFER, engine=engine_kind
        )
        runs[engine_kind] = acc.run_inference(model)
    scalar, batched = runs["scalar"], runs["batched"]
    s, b = scalar.stats.to_dict(), batched.stats.to_dict()
    mismatched = {k: (s[k], b.get(k)) for k in s if s[k] != b.get(k)}
    assert not mismatched, f"{kind}: stats diverged between engines: {mismatched}"
    assert len(scalar.outputs) == len(batched.outputs)
    for out_s, out_b in zip(scalar.outputs, batched.outputs):
        np.testing.assert_array_equal(out_s, out_b)
