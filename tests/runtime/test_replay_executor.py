"""Replay as the production execution path.

``SweepExecutor`` / ``execute_job`` record phase traces on first
execution and replay them on repeats, with the manifest carrying
honest ``replay_hits`` / ``replay_misses`` phase counters.  Replay is
bit-identical to live simulation by contract, so these tests pin three
things: the counters tell the truth, repeated runs produce identical
serialised results, and a corrupt or stale trace record degrades to a
live (still identical) run instead of failing or lying.
"""

from __future__ import annotations

import json

import pytest

from repro.runtime import JobSpec, SweepExecutor, execute_job
from repro.runtime.cache import TraceStore
from repro.sim.replay import RECORD_REQUIRED_KEYS, TraceSession


def _spec(kind="op", **kw):
    base = dict(dataset="cora", kind=kind, scale=0.05)
    base.update(kw)
    return JobSpec(**base)


def _trace_files(trace_root):
    return [p for p in trace_root.rglob("*.json") if not p.name.startswith(".")]


def _canon(doc):
    """Serialised result minus the host-side fields (wall-clock and the
    replay side-channel) -- everything left must be bit-identical
    between live and replayed runs."""
    return {k: v for k, v in doc.items() if k not in ("wall_seconds", "replay")}


class TestExecutorRecordThenReplay:
    def test_second_sweep_replays_bit_identical(self, tmp_path):
        specs = [_spec(), _spec(kind="rwp")]
        first = SweepExecutor(n_jobs=1, trace_root=str(tmp_path)).run(specs)
        assert first.manifest.replay_misses > 0
        assert first.manifest.replay_hits == 0
        second = SweepExecutor(n_jobs=1, trace_root=str(tmp_path)).run(specs)
        # Every phase recorded by the first sweep replays in the second.
        assert second.manifest.replay_hits == first.manifest.replay_misses
        assert second.manifest.replay_misses == 0
        for spec in specs:
            assert _canon(second.for_spec(spec).to_dict()) == _canon(
                first.for_spec(spec).to_dict()
            )

    def test_manifest_serialises_replay_counters(self, tmp_path):
        sweep = SweepExecutor(n_jobs=1, trace_root=str(tmp_path)).run([_spec()])
        payload = sweep.manifest.to_dict()
        assert payload["replay_misses"] == sweep.manifest.replay_misses > 0
        assert payload["replay_hits"] == 0
        assert "replay" in SweepExecutor(
            n_jobs=1, trace_root=str(tmp_path)
        ).run([_spec()]).manifest.summary()

    def test_traces_colocate_with_result_cache(self, tmp_path):
        # ``--cache-dir /x`` must keep traces next to the records it
        # isolates, not leak them into the process-wide default root.
        from repro.runtime import ResultCache

        cache = ResultCache(tmp_path / "c")
        sweep = SweepExecutor(n_jobs=1, cache=cache).run([_spec()])
        assert sweep.manifest.replay_misses > 0
        assert _trace_files(tmp_path / "c" / "traces")

    def test_replay_disabled_counts_nothing(self, tmp_path):
        for _ in range(2):
            sweep = SweepExecutor(n_jobs=1, replay=False).run([_spec()])
            assert sweep.manifest.replay_hits == 0
            assert sweep.manifest.replay_misses == 0

    def test_execute_job_side_channel(self, tmp_path):
        first = execute_job(_spec(), trace_root_dir=str(tmp_path))
        assert first["replay"]["recorded"] > 0
        assert first["replay"]["replayed"] == 0
        second = execute_job(_spec(), trace_root_dir=str(tmp_path))
        assert second["replay"]["replayed"] == first["replay"]["recorded"]
        assert second["replay"]["recorded"] == 0
        assert _canon(first) == _canon(second)

    def test_execute_job_replay_off_has_no_side_channel(self):
        doc = execute_job(_spec(), replay=False)
        assert "replay" not in doc


class TestFallback:
    def test_corrupt_traces_fall_back_live(self, tmp_path):
        baseline = execute_job(_spec(), trace_root_dir=str(tmp_path))
        files = _trace_files(tmp_path)
        assert files
        for path in files:
            path.write_text("{ not json", encoding="utf-8")
        rerun = execute_job(_spec(), trace_root_dir=str(tmp_path))
        # Every phase missed (the store evicted the garbage) and was
        # re-recorded live; the result is still bit-identical.
        assert rerun["replay"]["replayed"] == 0
        assert rerun["replay"]["recorded"] == baseline["replay"]["recorded"]
        assert _canon(rerun) == _canon(baseline)
        # The re-recorded tree is healthy again.
        healed = execute_job(_spec(), trace_root_dir=str(tmp_path))
        assert healed["replay"]["replayed"] > 0

    @pytest.mark.parametrize("missing", sorted(RECORD_REQUIRED_KEYS))
    def test_stale_record_missing_key_is_miss(self, tmp_path, missing):
        baseline = execute_job(_spec(), trace_root_dir=str(tmp_path))
        for path in _trace_files(tmp_path):
            record = json.loads(path.read_text(encoding="utf-8"))
            record.pop(missing, None)
            path.write_text(json.dumps(record), encoding="utf-8")
        rerun = execute_job(_spec(), trace_root_dir=str(tmp_path))
        assert rerun["replay"]["replayed"] == 0
        assert rerun["replay"]["recorded"] == baseline["replay"]["recorded"]
        assert _canon(rerun) == _canon(baseline)

    def test_session_lookup_validates_schema_and_shape(self, tmp_path):
        """Unit-level: ``lookup`` rejects wrong-schema and incomplete
        records without tallying a replay."""
        from repro.sim.replay import TRACE_SCHEMA_VERSION

        store = TraceStore(tmp_path)
        session = TraceSession(store)
        complete = dict.fromkeys(RECORD_REQUIRED_KEYS, 0)
        session.record("a" * 64, "phase0", complete)
        assert session.lookup("a" * 64, "phase0") is not None
        assert session.replayed == ["phase0"]

        stale = dict(complete, trace_schema=TRACE_SCHEMA_VERSION + 1)
        store.store_trace("b" * 64, stale)
        assert session.lookup("b" * 64, "phase1") is None

        truncated = dict(complete, trace_schema=TRACE_SCHEMA_VERSION)
        del truncated["output"]
        store.store_trace("c" * 64, truncated)
        assert session.lookup("c" * 64, "phase2") is None
        assert session.replayed == ["phase0"]
