"""Address map and buffer organisations (unified vs split)."""

import pytest

from repro.hymm import AddressMap, DenseMatrixBuffer, HyMMConfig, SplitBufferPair
from repro.hymm.dmb import make_buffer
from repro.sim import CLASS_OUT, CLASS_PARTIAL, CLASS_W, CLASS_XW, DRAM, DRAMConfig, SimStats


@pytest.fixture
def amap(config):
    return AddressMap(config)


class TestAddressMap:
    def test_spaces_disjoint(self, amap):
        addrs = {
            amap.w_addr(0, 5, 16),
            amap.xw_addr(0, 5, 16),
            amap.out_addr(0, 5, 16),
        }
        assert len(addrs) == 3

    def test_layers_disjoint(self, amap):
        assert amap.xw_addr(0, 5, 16) != amap.xw_addr(1, 5, 16)

    def test_rows_consecutive_when_one_line(self, amap):
        assert amap.xw_addr(0, 6, 16) == amap.xw_addr(0, 5, 16) + 1

    def test_wide_rows_stride(self, amap):
        # 32-wide rows need 2 lines each.
        assert amap.xw_addr(0, 1, 32) == amap.xw_addr(0, 0, 32) + 2
        assert amap.xw_addr(0, 0, 32, line=1) == amap.xw_addr(0, 0, 32) + 1

    def test_no_collision_across_many_rows(self, amap):
        seen = set()
        for layer in range(3):
            for row in range(1000):
                for fn in (amap.w_addr, amap.xw_addr, amap.out_addr):
                    addr = fn(layer, row, 16)
                    assert addr not in seen
                    seen.add(addr)

    def test_bounds(self, amap):
        with pytest.raises(ValueError):
            amap.w_addr(-1, 0, 16)
        with pytest.raises(ValueError):
            amap.w_addr(0, 1 << 33, 16)


class TestMakeBuffer:
    def test_unified(self, config, stats, dram):
        assert isinstance(make_buffer(config, dram, stats), DenseMatrixBuffer)

    def test_split(self, stats, dram):
        cfg = HyMMConfig(unified_buffer=False)
        assert isinstance(make_buffer(cfg, dram, stats), SplitBufferPair)


class TestSplitPair:
    @pytest.fixture
    def pair(self, stats):
        cfg = HyMMConfig(unified_buffer=False, dmb_bytes=8 * 64)
        dram = DRAM(DRAMConfig(), stats)
        return SplitBufferPair(cfg, dram, stats)

    def test_halved_capacity(self, pair):
        assert pair.input_buffer.capacity_lines == 4
        assert pair.output_buffer.capacity_lines == 4

    def test_inputs_route_to_input_half(self, pair):
        pair.write(0, 1, CLASS_W, "W")
        pair.write(0, 2, CLASS_XW, "XW")
        assert pair.input_buffer.size_lines == 2
        assert pair.output_buffer.size_lines == 0

    def test_outputs_route_to_output_half(self, pair):
        pair.write(0, 3, CLASS_OUT, "AXW")
        pair.accumulate(0, 4, "partial")
        assert pair.output_buffer.size_lines == 2
        assert pair.input_buffer.size_lines == 0

    def test_contains_searches_both(self, pair):
        pair.write(0, 1, CLASS_W, "W")
        pair.write(0, 2, CLASS_OUT, "AXW")
        assert pair.contains(1) and pair.contains(2)
        assert not pair.contains(3)

    def test_size_lines_sums(self, pair):
        pair.write(0, 1, CLASS_W, "W")
        pair.write(0, 2, CLASS_OUT, "AXW")
        assert pair.size_lines == 2

    def test_input_pressure_does_not_evict_outputs(self, pair):
        pair.accumulate(0, 100, "partial")
        for addr in range(10):
            pair.write(addr, addr, CLASS_XW, "XW")
        assert pair.contains(100)

    def test_priority_setter_propagates(self, pair):
        order = (CLASS_XW, CLASS_OUT, CLASS_PARTIAL, CLASS_W)
        pair.evict_priority = order
        assert pair.input_buffer.evict_priority == order
        assert pair.output_buffer.evict_priority == order

    def test_flush_both(self, pair, stats):
        pair.write(0, 1, CLASS_W, "W")
        pair.write(0, 2, CLASS_OUT, "AXW")
        pair.flush(10)
        assert pair.size_lines == 0

    def test_invalidate_both(self, pair):
        pair.write(0, 1, CLASS_XW, "XW")
        assert pair.invalidate(CLASS_XW) == 1

    def test_reclassify_within_half(self, pair):
        pair.accumulate(0, 4, "partial")
        moved = pair.reclassify(CLASS_PARTIAL, CLASS_OUT)
        assert moved == 1
        assert pair.output_buffer.resident_lines(CLASS_OUT) == 1

    def test_reclassify_across_split_writes_back(self, pair, stats):
        pair.accumulate(0, 4, "partial")
        pair.reclassify(CLASS_PARTIAL, CLASS_XW)
        # Crossing the physical partition forces a writeback.
        assert stats.dram_write_bytes[CLASS_XW] == 64
        assert not pair.contains(4)
