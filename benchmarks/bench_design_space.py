"""Design-space sweeps: tiling threshold and DMB capacity.

Section IV-E fixes the tiling threshold at 20% of the nodes and the DMB
at 256 KB; these sweeps show the neighbourhood of those choices,
pairing each DMB size with its silicon cost from the Table III area
model.
"""

from repro.area import AreaModel
from repro.bench import format_table
from repro.bench.runner import run_accelerator
from repro.hymm import HyMMConfig

_DATASET = "amazon-photo"


def test_threshold_sweep(benchmark, emit):
    fractions = (0.05, 0.1, 0.2, 0.4, 0.8)

    def sweep():
        rows = []
        for frac in fractions:
            cfg = HyMMConfig(dmb_bytes=64 * 1024, threshold_fraction=frac)
            r = run_accelerator(_DATASET, "hymm", config=cfg)
            rows.append([
                f"{int(frac * 100)}%",
                r.stats.cycles,
                r.stats.dram_total_bytes() / (1024 * 1024),
                r.stats.hit_rate(),
            ])
        return rows, format_table(
            ["threshold", "cycles", "DRAM MB", "hit rate"], rows
        )

    rows, text = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("sweep_threshold", text)
    cycles = [row[1] for row in rows]
    # The paper's 20% sits in the flat part of the curve: within 25% of
    # the sweep's best.
    paper_choice = cycles[list(fractions).index(0.2)]
    assert paper_choice <= min(cycles) * 1.25


def test_dmb_size_sweep(benchmark, emit):
    sizes_kb = (16, 64, 256, 1024)

    def sweep():
        rows = []
        for kb in sizes_kb:
            cfg = HyMMConfig(dmb_bytes=kb * 1024)
            r = run_accelerator(_DATASET, "hymm", config=cfg)
            area = AreaModel(cfg).total_mm2("7nm")
            rows.append([
                f"{kb} KB",
                r.stats.cycles,
                r.stats.dram_total_bytes() / (1024 * 1024),
                area,
            ])
        return rows, format_table(
            ["DMB", "cycles", "DRAM MB", "area mm^2 (7nm)"], rows
        )

    rows, text = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("sweep_dmb_size", text)
    cycles = [row[1] for row in rows]
    areas = [row[3] for row in rows]
    # Bigger buffers never hurt performance and always cost area.
    assert cycles == sorted(cycles, reverse=True) or min(cycles) == cycles[-1]
    assert areas == sorted(areas)
