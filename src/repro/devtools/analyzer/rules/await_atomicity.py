"""Rule ``await-atomicity``: check-then-act split across an ``await``.

Single-threaded asyncio removes data races but not *atomicity* bugs:
every ``await`` is a point where any other coroutine may run, so a
read of shared server state that is validated *before* an ``await``
can be stale by the time the write lands *after* it.  The canonical
shape is the single-flight registry race::

    entry = self._jobs.get(fingerprint)
    if entry is None:                    # check
        record = await self._probe(...)  # suspension point
        self._jobs[fingerprint] = entry  # act -- too late: a second
                                         # identical submit already
                                         # passed the same check

PR 6's server avoids this by registering the entry *before* its first
``await`` (see ``SweepServer._handle_submit``); this rule pins that
discipline down for every ``async def`` in scope.

Mechanics: within one async function (own body only -- nested defs are
separate graph nodes), the rule tracks, in source order,

* **checks** -- ``if`` / ``while`` / ternary tests that read a
  ``self.<attr>`` slot, directly or through a local alias
  (``prior = self._jobs.get(fp)`` ... ``if prior is None``);
* **suspension points** -- every ``await``;
* **acts** -- stores to the same slot (``self._jobs[fp] = e``,
  ``self.counter = n + 1``, ``self.x += 1``), including one level of
  interprocedural sight: ``self._register(entry)`` is an act on every
  slot the resolved method assigns.

A finding is an act whose *most recent* check of the same slot has an
``await`` between them.  Re-validating after the suspension therefore
clears the finding -- the fix the message suggests when hoisting the
act above the first ``await`` is not possible.  ``+=`` on its own (no
separate check) is not flagged: without interleaving threads an
``AugAssign`` executes atomically between suspension points.
"""

from __future__ import annotations

import ast
import bisect
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.analyzer.callgraph import (
    KIND_CALL,
    CallGraph,
    FunctionInfo,
    get_callgraph,
)
from repro.devtools.analyzer.core import Finding, Project, Rule, register

Pos = Tuple[int, int]


@register
class AwaitAtomicityRule(Rule):
    name = "await-atomicity"
    description = (
        "shared server state checked before an await must not be "
        "written after it without re-validation (single-flight race)"
    )
    default_severity = "error"
    default_options = {
        "scope": ["repro.serve"],
    }

    def run(self, project: Project) -> Iterator[Finding]:
        scope = tuple(self.options["scope"])
        graph = get_callgraph(project)
        for info in graph.async_functions(*scope):
            yield from self._check_function(project, graph, info)

    def _check_function(
        self, project: Project, graph: CallGraph, info: FunctionInfo
    ) -> Iterator[Finding]:
        awaits: List[Pos] = []
        checks: Dict[str, List[Pos]] = {}
        acts: List[Tuple[str, ast.AST, Pos]] = []
        aliases: Dict[str, str] = {}
        site_stores = _site_stores(graph, info)

        for node in _own_nodes_in_order(info.node):
            pos = _pos(node)
            if isinstance(node, ast.Await):
                awaits.append(pos)
            elif isinstance(node, (ast.If, ast.While, ast.IfExp)):
                for key in _keys_in_expr(node.test, aliases):
                    checks.setdefault(key, []).append(_pos(node.test))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    key = _self_slot(target)
                    if key is not None:
                        acts.append((key, node, pos))
                if len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    _bind_alias(aliases, node.targets[0].id, node.value)
            elif isinstance(node, ast.AugAssign):
                key = _self_slot(node.target)
                if key is not None:
                    acts.append((key, node, pos))
            elif isinstance(node, ast.Call):
                for key in site_stores.get(id(node), ()):
                    acts.append((key, node, pos))

        if not awaits:
            return
        awaits.sort()
        reported: Set[Tuple[int, str]] = set()
        for key, node, act_pos in acts:
            last_check = _last_before(checks.get(key, []), act_pos)
            if last_check is None:
                continue
            split = _first_between(awaits, last_check, act_pos)
            if split is None:
                continue
            if (id(node), key) in reported:
                continue
            reported.add((id(node), key))
            yield self.finding(
                project, info.module, node,
                f"`self.{key}` is checked on line {last_check[0]} but "
                f"written here, across the await on line {split[0]} -- "
                "another coroutine may pass the same check in between; "
                "act before the first await or re-validate after it",
                symbol=f"{info.name}:{key}",
            )


def _site_stores(
    graph: CallGraph, info: FunctionInfo
) -> Dict[int, Set[str]]:
    """Call-node id -> self slots stored by the resolved ``self.meth``
    callee (one interprocedural level: a method of the same object)."""
    stores: Dict[int, Set[str]] = {}
    for site in graph.sites(info.qname):
        if site.kind != KIND_CALL or site.callee is None:
            continue
        if site.target is None or not site.target.startswith("self."):
            continue
        if site.target.count(".") != 1:  # self.meth only, not self.x.meth
            continue
        callee = graph.functions.get(site.callee)
        if callee is None:
            continue
        slots = _stored_slots(callee.node)
        if slots:
            stores[id(site.node)] = slots
    return stores


def _stored_slots(fn: ast.AST) -> Set[str]:
    slots: Set[str] = set()
    for node in _own_nodes_in_order(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                key = _self_slot(target)
                if key is not None:
                    slots.add(key)
    return slots


def _own_nodes_in_order(fn: ast.AST) -> Iterator[ast.AST]:
    """Own-body nodes (nested defs excluded) in source order."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.Lambda)
        ):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    out.sort(key=_pos)
    return iter(out)


def _pos(node: ast.AST) -> Pos:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def _self_slot(target: ast.AST) -> Optional[str]:
    node: ast.AST = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        parent = node.value
        if isinstance(parent, ast.Name) and parent.id == "self":
            return node.attr if isinstance(node, ast.Attribute) else None
        node = parent
    return None


def _loaded_slot(expr: ast.AST) -> Optional[str]:
    """Slot read by ``self.a`` / ``self.a[...]`` / ``self.a.get(...)``."""
    node: ast.AST = expr
    if isinstance(node, ast.Call):
        node = node.func
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        parent = node.value
        if isinstance(parent, ast.Name) and parent.id == "self":
            return node.attr if isinstance(node, ast.Attribute) else None
        node = parent
    return None


def _bind_alias(aliases: Dict[str, str], var: str, value: ast.AST) -> None:
    slot = _loaded_slot(value)
    if slot is not None:
        aliases[var] = slot
    elif isinstance(value, ast.Name) and value.id in aliases:
        aliases[var] = aliases[value.id]
    else:
        aliases.pop(var, None)


def _keys_in_expr(expr: ast.AST, aliases: Dict[str, str]) -> Set[str]:
    keys: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                keys.add(node.attr)
        elif isinstance(node, ast.Name) and node.id in aliases:
            keys.add(aliases[node.id])
    return keys


def _last_before(positions: List[Pos], pos: Pos) -> Optional[Pos]:
    idx = bisect.bisect_left(sorted(positions), pos)
    if idx == 0:
        return None
    return sorted(positions)[idx - 1]


def _first_between(
    sorted_positions: List[Pos], lo: Pos, hi: Pos
) -> Optional[Pos]:
    idx = bisect.bisect_right(sorted_positions, lo)
    if idx < len(sorted_positions) and sorted_positions[idx] < hi:
        return sorted_positions[idx]
    return None
