"""Dataset registry: Table II specs and the loader."""

import pytest

from repro.graphs.registry import (
    DATASETS,
    dataset_names,
    get_spec,
    load_dataset,
)


class TestSpecs:
    def test_all_seven_datasets(self):
        assert len(DATASETS) == 7

    def test_table2_order(self):
        assert dataset_names() == (
            "cora",
            "amazon-photo",
            "amazon-computers",
            "coauthor-cs",
            "coauthor-physics",
            "flickr",
            "yelp",
        )

    def test_cora_spec_matches_table2(self):
        spec = get_spec("cora")
        assert spec.n_nodes == 2708
        assert spec.n_edges == 10556
        assert spec.feature_length == 1433
        assert spec.hidden_dim == 16

    def test_yelp_spec(self):
        spec = get_spec("yelp")
        assert spec.n_nodes == 716_847
        assert spec.n_edges == 13_954_819

    def test_abbreviation_lookup(self):
        assert get_spec("AP").name == "amazon-photo"
        assert get_spec("cr").name == "cora"

    def test_case_insensitive(self):
        assert get_spec("CORA").name == "cora"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            get_spec("reddit")

    def test_feature_density_complement(self):
        spec = get_spec("amazon-photo")
        assert spec.feature_density == pytest.approx(1 - 0.6526)


class TestLoader:
    def test_full_scale_statistics(self):
        ds = load_dataset("cora", scale=1.0, seed=0)
        assert ds.n_nodes == 2708
        assert ds.n_edges == 10556
        assert ds.feature_length == 1433

    def test_sparsity_close_to_spec(self):
        ds = load_dataset("cora", scale=1.0, seed=0)
        assert ds.adjacency_sparsity == pytest.approx(0.9986, abs=0.001)
        assert ds.feature_sparsity == pytest.approx(0.9873, abs=0.005)

    def test_scaling_shrinks(self):
        ds = load_dataset("cora", scale=0.25, seed=0)
        assert 600 < ds.n_nodes < 750

    def test_minimum_size_floor(self):
        ds = load_dataset("cora", scale=0.001, seed=0)
        assert ds.n_nodes >= 64

    def test_deterministic(self):
        a = load_dataset("cora", scale=0.1, seed=1)
        b = load_dataset("cora", scale=0.1, seed=1)
        assert a.adjacency.allclose(b.adjacency)

    def test_datasets_differ_at_same_seed(self):
        a = load_dataset("cora", scale=0.1, seed=1)
        b = load_dataset("amazon-photo", scale=0.035, seed=1)
        assert a.n_edges != b.n_edges

    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            load_dataset("cora", scale=0.0)
        with pytest.raises(ValueError):
            load_dataset("cora", scale=1.5)

    def test_feature_length_override(self):
        ds = load_dataset("cora", scale=0.05, feature_length=64)
        assert ds.feature_length == 64

    def test_scale_recorded(self):
        ds = load_dataset("cora", scale=0.1)
        assert ds.scale == 0.1

    def test_edge_count_even(self):
        ds = load_dataset("amazon-photo", scale=0.07, seed=4)
        assert ds.n_edges % 2 == 0
