"""Dataset persistence and plain-text graph import.

Two jobs a downstream user needs:

* **persistence** -- :func:`save_dataset` / :func:`load_dataset_npz`
  round-trip a :class:`repro.graphs.dataset.GraphDataset` through a
  single compressed ``.npz`` file, so a synthesised (or imported)
  instance can be pinned and shared;
* **import** -- :func:`read_edge_list` / :func:`dataset_from_edge_list`
  turn a whitespace-separated edge-list file (the de-facto exchange
  format of SNAP, OGB and friends) into an accelerator-ready dataset,
  synthesising features when none are supplied.
"""

from __future__ import annotations

import pathlib
from typing import Optional, Union

import numpy as np

from repro.graphs.dataset import GraphDataset
from repro.graphs.synthetic import sparse_feature_matrix
from repro.sparse import COOMatrix, CSRMatrix, coo_to_csr
from repro.sparse.coo import INDEX_DTYPE, VALUE_DTYPE

PathLike = Union[str, pathlib.Path]

_FORMAT_VERSION = 1


def save_dataset(dataset: GraphDataset, path: PathLike) -> None:
    """Serialise a dataset to one compressed ``.npz`` file."""
    np.savez_compressed(
        str(path),
        version=np.int64(_FORMAT_VERSION),
        name=np.str_(dataset.name),
        n_nodes=np.int64(dataset.n_nodes),
        hidden_dim=np.int64(dataset.hidden_dim),
        scale=np.float64(dataset.scale),
        adj_rows=dataset.adjacency.rows,
        adj_cols=dataset.adjacency.cols,
        adj_values=dataset.adjacency.values,
        feat_shape=np.asarray(dataset.features.shape, dtype=np.int64),
        feat_indptr=dataset.features.indptr,
        feat_indices=dataset.features.indices,
        feat_values=dataset.features.values,
    )


def load_dataset_npz(path: PathLike) -> GraphDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    with np.load(str(path), allow_pickle=False) as archive:
        version = int(archive["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset file version {version} "
                f"(this library writes version {_FORMAT_VERSION})"
            )
        n = int(archive["n_nodes"])
        adjacency = COOMatrix(
            (n, n),
            archive["adj_rows"],
            archive["adj_cols"],
            archive["adj_values"],
        )
        features = CSRMatrix(
            tuple(int(x) for x in archive["feat_shape"]),
            archive["feat_indptr"],
            archive["feat_indices"],
            archive["feat_values"],
        )
        return GraphDataset(
            name=str(archive["name"]),
            adjacency=adjacency,
            features=features,
            hidden_dim=int(archive["hidden_dim"]),
            scale=float(archive["scale"]),
        )


def read_edge_list(
    path: PathLike,
    comments: str = "#",
    undirected: bool = True,
) -> COOMatrix:
    """Parse a whitespace-separated ``u v`` edge-list file.

    Node ids may be arbitrary non-negative integers; they are compacted
    to ``0..n-1`` preserving order of first appearance is NOT attempted
    -- ids are kept as-is with the matrix sized to the max id + 1 (the
    common convention of SNAP exports).  Self-loops are dropped;
    duplicate edges collapse (binary adjacency).
    """
    src, dst = [], []
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_no}: expected 'u v', got {line!r}")
            u, v = int(parts[0]), int(parts[1])
            if u < 0 or v < 0:
                raise ValueError(f"{path}:{line_no}: negative node id")
            if u == v:
                continue
            src.append(u)
            dst.append(v)
    if not src:
        return COOMatrix.empty((0, 0))
    n = max(max(src), max(dst)) + 1
    rows = np.asarray(src, dtype=INDEX_DTYPE)
    cols = np.asarray(dst, dtype=INDEX_DTYPE)
    if undirected:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
    values = np.ones(rows.size, dtype=VALUE_DTYPE)
    coo = COOMatrix((n, n), rows, cols, values)
    # Collapse duplicates to a binary adjacency.
    return COOMatrix(coo.shape, coo.rows, coo.cols,
                     np.ones(coo.nnz, dtype=VALUE_DTYPE))


def dataset_from_edge_list(
    path: PathLike,
    name: Optional[str] = None,
    features: Optional[CSRMatrix] = None,
    feature_length: int = 128,
    feature_density: float = 0.2,
    hidden_dim: int = 16,
    seed: int = 0,
) -> GraphDataset:
    """Build an accelerator-ready dataset from an edge-list file.

    When no feature matrix is supplied, a seeded sparse one is
    synthesised (``feature_length`` x ``feature_density``), mirroring
    how the registry datasets are built.
    """
    adjacency = read_edge_list(path)
    if adjacency.shape[0] == 0:
        raise ValueError(f"{path}: no edges found")
    if features is None:
        features = sparse_feature_matrix(
            adjacency.shape[0], feature_length, feature_density, seed=seed
        )
    return GraphDataset(
        name=name or pathlib.Path(path).stem,
        adjacency=adjacency,
        features=features,
        hidden_dim=hidden_dim,
    )
