"""The typed metrics registry: instruments, labels, histograms,
get-or-create registration."""

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    MAX_LABEL_CARDINALITY,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    exponential_buckets,
    quantile_from_counts,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


# ----------------------------------------------------------------------
# Counters and gauges
# ----------------------------------------------------------------------
class TestCounterGauge:
    def test_counter_accumulates(self, registry):
        c = registry.counter("repro_t_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self, registry):
        c = registry.counter("repro_t_total", "help")
        with pytest.raises(MetricError, match="only go up"):
            c.inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        g = registry.gauge("repro_t_depth", "help")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value == 3.0

    def test_labelled_children_are_independent(self, registry):
        c = registry.counter("repro_t_total", "help", labelnames=("status",))
        c.labels("hit").inc(3)
        c.labels("miss").inc()
        assert c.labels("hit").value == 3.0
        assert c.labels("miss").value == 1.0
        assert c.labels(status="hit") is c.labels("hit")

    def test_labelled_instrument_rejects_direct_mutation(self, registry):
        c = registry.counter("repro_t_total", "help", labelnames=("status",))
        with pytest.raises(MetricError, match="labels"):
            c.inc()

    def test_unlabelled_instrument_rejects_labels(self, registry):
        c = registry.counter("repro_t_total", "help")
        with pytest.raises(MetricError, match="expected 0 label"):
            c.labels("hit")

    def test_unknown_keyword_label_rejected(self, registry):
        c = registry.counter("repro_t_total", "help", labelnames=("status",))
        with pytest.raises(MetricError):
            c.labels(nope="x")

    def test_cardinality_cap_raises(self, registry):
        c = registry.counter("repro_t_total", "help", labelnames=("k",))
        for i in range(MAX_LABEL_CARDINALITY):
            c.labels(str(i))
        with pytest.raises(MetricError, match="cardinality"):
            c.labels("one-too-many")

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(MetricError, match="invalid metric name"):
            registry.counter("bad-name", "help")
        with pytest.raises(MetricError, match="invalid label name"):
            registry.counter("repro_ok", "help", labelnames=("bad-label",))
        with pytest.raises(MetricError, match="duplicate label"):
            registry.counter("repro_ok", "help", labelnames=("a", "a"))


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
class TestHistogram:
    def test_observe_tracks_count_sum_max(self, registry):
        h = registry.histogram("repro_t_ms", "help", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(15.0)
        assert h.max == 10.0

    def test_bucket_placement_and_overflow(self, registry):
        h = registry.histogram("repro_t_ms", "help", buckets=(1.0, 2.0))
        h.observe(0.1)   # <= 1
        h.observe(1.0)   # boundary counts in its own bucket
        h.observe(1.5)   # <= 2
        h.observe(99.0)  # overflow
        counts, total, _, _ = h.snapshot()
        assert counts == (2, 1, 1)
        assert total == 4

    def test_quantiles_interpolate_and_clamp_to_max(self, registry):
        h = registry.histogram("repro_t_ms", "help", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 1.2, 1.4, 3.9):
            h.observe(v)
        p50 = h.quantile(0.5)
        assert 0.0 < p50 <= 2.0
        # The p100 estimate must never exceed the exact tracked max.
        assert h.quantile(1.0) <= 3.9

    def test_overflow_quantile_is_observed_max(self, registry):
        h = registry.histogram("repro_t_ms", "help", buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == 50.0

    def test_percentile_summary_shape(self, registry):
        h = registry.histogram("repro_t_ms", "help")
        assert h.percentile_summary() == {"count": 0}
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        summary = h.percentile_summary()
        assert set(summary) == {"count", "p50", "p90", "p99", "max", "mean"}
        assert summary["count"] == 3
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["p50"] <= summary["p90"] <= summary["p99"] <= 3.0

    def test_bad_buckets_rejected(self, registry):
        with pytest.raises(MetricError, match="strictly increasing"):
            registry.histogram("repro_t_ms", "help", buckets=(2.0, 1.0))
        with pytest.raises(MetricError, match="strictly increasing"):
            registry.histogram("repro_t2_ms", "help", buckets=())

    def test_exponential_buckets(self):
        assert exponential_buckets(1.0, 2.0, 3) == (1.0, 2.0, 4.0)
        assert len(DEFAULT_BUCKETS) == 17
        with pytest.raises(MetricError):
            exponential_buckets(0.0, 2.0, 3)
        with pytest.raises(MetricError):
            exponential_buckets(1.0, 1.0, 3)
        with pytest.raises(MetricError):
            exponential_buckets(1.0, 2.0, 0)

    def test_quantile_from_counts_empty(self):
        assert quantile_from_counts((0, 0), (1.0,), 0.5) == 0.0


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, registry):
        a = registry.counter("repro_t_total", "help")
        b = registry.counter("repro_t_total", "help")
        assert a is b

    def test_conflicting_schema_raises(self, registry):
        registry.counter("repro_t_total", "help")
        with pytest.raises(MetricError, match="different schema"):
            registry.gauge("repro_t_total", "help")
        with pytest.raises(MetricError, match="different schema"):
            registry.counter("repro_t_total", "other help")
        with pytest.raises(MetricError, match="different schema"):
            registry.counter("repro_t_total", "help", labelnames=("x",))

    def test_conflicting_histogram_buckets_raise(self, registry):
        registry.histogram("repro_t_ms", "help", buckets=(1.0, 2.0))
        with pytest.raises(MetricError, match="different schema"):
            registry.histogram("repro_t_ms", "help", buckets=(1.0, 4.0))

    def test_collect_is_name_ordered(self, registry):
        registry.counter("repro_z_total", "help")
        registry.counter("repro_a_total", "help")
        assert [m.name for m in registry.collect()] == [
            "repro_a_total", "repro_z_total",
        ]

    def test_to_dict_shapes(self, registry):
        registry.counter("repro_c_total", "c help").inc(2)
        labelled = registry.gauge("repro_g", "g help", labelnames=("k",))
        labelled.labels("a").set(1)
        registry.histogram("repro_h_ms", "h help", buckets=(1.0,)).observe(0.5)
        doc = registry.to_dict()
        assert doc["repro_c_total"] == {
            "kind": "counter", "help": "c help", "value": 2.0,
        }
        assert doc["repro_g"]["labels"] == ["k"]
        assert doc["repro_g"]["values"]["a"]["value"] == 1.0
        h = doc["repro_h_ms"]
        assert h["kind"] == "histogram"
        assert h["buckets"] == {"1": 1}
        assert h["overflow"] == 0
        assert h["count"] == 1

    def test_instruments_constructible_without_registry(self):
        # The classes are usable directly (the registry is the
        # namespace, not the factory of record).
        assert Counter("repro_x_total", "h").value == 0.0
        assert Gauge("repro_x", "h").value == 0.0
        assert Histogram("repro_x_ms", "h", buckets=(1.0,)).count == 0
