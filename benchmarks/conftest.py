"""Benchmark-suite plumbing.

Every bench regenerates one table or figure of the paper, prints it,
and writes it to ``benchmarks/results/<name>.txt`` so the artifacts
survive the run.  Simulations are memoised in-process
(``repro.bench.runner``), so benches that read the same runs (Fig. 7,
8, 9, 11) only pay for them once per session.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Print a report block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
