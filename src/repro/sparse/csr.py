"""Compressed sparse row (CSR) matrix.

CSR is the format HyMM's row-wise-product (RWP) dataflow consumes
(paper Table I: "CSR (others)").  The pointer array is what the SMQ's
pointer buffer holds; ``indices``/``values`` fill the index buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.sparse.coo import COOMatrix, INDEX_BYTES, INDEX_DTYPE, VALUE_BYTES, VALUE_DTYPE


@dataclass
class CSRMatrix:
    """Compressed sparse row storage.

    ``indptr`` has ``shape[0] + 1`` entries; row ``i`` owns the slice
    ``indices[indptr[i]:indptr[i+1]]`` / ``values[...]`` with column
    indices sorted ascending within each row.
    """

    shape: tuple
    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.shape = (int(self.shape[0]), int(self.shape[1]))
        self.indptr = np.asarray(self.indptr, dtype=INDEX_DTYPE)
        self.indices = np.asarray(self.indices, dtype=INDEX_DTYPE)
        self.values = np.asarray(self.values, dtype=VALUE_DTYPE)
        self._validate()

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if self.indptr.size != n_rows + 1:
            raise ValueError(
                f"indptr must have {n_rows + 1} entries, got {self.indptr.size}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size != self.values.size:
            raise ValueError("indices and values must have equal length")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n_cols):
            raise ValueError("column index out of bounds")

    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries."""
        return int(self.values.size)

    def row(self, i: int) -> "Tuple[np.ndarray, np.ndarray]":
        """Return ``(col_indices, values)`` views of row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def row_nnz(self, i: int) -> int:
        """Non-zero count of row ``i``."""
        return int(self.indptr[i + 1] - self.indptr[i])

    def row_degrees(self) -> np.ndarray:
        """Per-row non-zero counts (the out-degree vector for an adjacency matrix)."""
        return np.diff(self.indptr)

    def iter_rows(self) -> "Iterator[Tuple[int, np.ndarray, np.ndarray]]":
        """Yield ``(row, col_indices, values)`` for every non-empty row."""
        for i in range(self.shape[0]):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            if hi > lo:
                yield i, self.indices[lo:hi], self.values[lo:hi]

    def storage_bytes(self, pointer_bytes: int = INDEX_BYTES) -> int:
        """Bytes for the compressed stream: pointers + indices + values.

        This is the quantity the paper's Figure 6 compares against the
        region-tiled format.
        """
        return (
            self.indptr.size * pointer_bytes
            + self.nnz * INDEX_BYTES
            + self.nnz * VALUE_BYTES
        )

    def to_coo(self) -> COOMatrix:
        """Expand back to canonical COO triplets."""
        rows = np.repeat(
            np.arange(self.shape[0], dtype=INDEX_DTYPE), np.diff(self.indptr)
        )
        return COOMatrix(self.shape, rows, self.indices.copy(), self.values.copy())

    def to_dense(self) -> np.ndarray:
        """Materialise as dense ``float32`` (tests / small matrices only)."""
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        rows = np.repeat(
            np.arange(self.shape[0], dtype=INDEX_DTYPE), np.diff(self.indptr)
        )
        out[rows, self.indices] = self.values
        return out

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        """Compress canonical COO triplets (already row-major sorted)."""
        indptr = np.zeros(coo.shape[0] + 1, dtype=INDEX_DTYPE)
        np.add.at(indptr, coo.rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(coo.shape, indptr, coo.cols.copy(), coo.values.copy())

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
