"""Rule ``wire-schema``: every wire dataclass round-trips completely.

Objects crossing a process or disk boundary (pool transport, result
cache, manifests) travel as JSON dicts.  The runtime's correctness
rests on ``X.from_dict(X.to_dict())`` being the identity for every
dataclass reachable from the serialisation roots (``JobSpec`` and
``RunResult`` by default) -- a field added to a dataclass but forgotten
in ``to_dict`` silently truncates every cached record; one forgotten in
``from_dict`` resurrects records with default values.

Checks, per reachable dataclass:

* both ``to_dict`` and ``from_dict`` are defined;
* every dataclass field appears as a key in the dict literal
  ``to_dict`` returns (``dataclasses.asdict(self)`` counts as complete;
  extra metadata keys like ``schema_version`` are fine);
* every dataclass field appears as a keyword in the constructor call
  ``from_dict`` returns (``cls(**kwargs)`` counts as complete).

Reachability follows field *annotations*: a field typed
``Optional[HyMMConfig]`` pulls ``HyMMConfig`` (and transitively
``DRAMConfig``) into the wire set.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.devtools.analyzer import astutil
from repro.devtools.analyzer.core import Finding, Project, Rule, SourceModule, register


def collect_dataclasses(
    project: Project,
) -> Dict[str, Tuple[SourceModule, ast.ClassDef]]:
    """Every ``@dataclass`` in the project, by class name.  A name
    defined twice keeps its first definition (fixture projects in tests
    never duplicate; ``src/`` has unique class names)."""
    found: Dict[str, Tuple[SourceModule, ast.ClassDef]] = {}
    for mod in project.modules:
        for cls in astutil.iter_classes(mod.tree):
            if astutil.is_dataclass_def(cls):
                found.setdefault(cls.name, (mod, cls))
    return found


def reachable_wire_classes(
    project: Project, roots: List[str]
) -> Dict[str, Tuple[SourceModule, ast.ClassDef]]:
    """The wire set: root dataclasses plus every dataclass reachable
    through field annotations."""
    dataclasses = collect_dataclasses(project)
    seen: Set[str] = set()
    frontier = [r for r in roots if r in dataclasses]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        _, cls = dataclasses[name]
        for _, ann in astutil.dataclass_fields(cls):
            for ref in astutil.annotation_names(ann.annotation):
                if ref in dataclasses and ref not in seen:
                    frontier.append(ref)
    return {name: dataclasses[name] for name in sorted(seen)}


@register
class WireSchemaRule(Rule):
    name = "wire-schema"
    description = (
        "dataclasses reachable from the serialisation roots define "
        "to_dict/from_dict with full field coverage"
    )
    default_severity = "error"
    default_options = {"roots": ["JobSpec", "RunResult"]}

    def run(self, project: Project) -> Iterator[Finding]:
        roots = list(self.options["roots"])
        for name, (mod, cls) in reachable_wire_classes(project, roots).items():
            fields = [f for f, _ in astutil.dataclass_fields(cls)]
            methods = astutil.methods_of(cls)
            to_dict = methods.get("to_dict")
            from_dict = methods.get("from_dict")
            if to_dict is None:
                yield self.finding(
                    project, mod, cls,
                    f"wire dataclass {name} has no to_dict(); it is "
                    f"serialised across the process/cache boundary",
                    symbol=f"{name}.to_dict:missing",
                )
            else:
                yield from self._check_to_dict(project, mod, name, to_dict, fields)
            if from_dict is None:
                yield self.finding(
                    project, mod, cls,
                    f"wire dataclass {name} has no from_dict(); cached "
                    f"records of it cannot be rebuilt",
                    symbol=f"{name}.from_dict:missing",
                )
            else:
                yield from self._check_from_dict(
                    project, mod, name, from_dict, fields
                )

    # ------------------------------------------------------------------
    def _check_to_dict(
        self, project, mod, cls_name: str, fn: ast.FunctionDef, fields: List[str]
    ) -> Iterator[Finding]:
        complete, keys = _returned_keys(fn)
        if complete:
            return
        missing = [f for f in fields if f not in keys]
        if missing:
            yield self.finding(
                project, mod, fn,
                f"{cls_name}.to_dict() omits field(s) "
                f"{', '.join(missing)}; serialised records would silently "
                f"drop them",
                symbol=f"{cls_name}.to_dict:{','.join(missing)}",
            )

    def _check_from_dict(
        self, project, mod, cls_name: str, fn: ast.FunctionDef, fields: List[str]
    ) -> Iterator[Finding]:
        complete, kwargs = _constructed_kwargs(fn, cls_name)
        if complete:
            return
        missing = [f for f in fields if f not in kwargs]
        if missing:
            yield self.finding(
                project, mod, fn,
                f"{cls_name}.from_dict() never passes field(s) "
                f"{', '.join(missing)}; deserialised objects would get "
                f"defaults instead of the recorded values",
                symbol=f"{cls_name}.from_dict:{','.join(missing)}",
            )


def _returned_keys(fn: ast.FunctionDef) -> Tuple[bool, Set[str]]:
    """(complete, literal keys) across every return in ``to_dict``.

    ``complete`` is True when any return is ``asdict(...)``, contains a
    ``**``-splat, or is a non-literal expression the checker cannot see
    through (benefit of the doubt; the round-trip tests catch those).
    """
    keys: Set[str] = set()
    saw_literal = False
    for node in ast.walk(fn):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        if isinstance(value, ast.Dict):
            saw_literal = True
            for key in value.keys:
                if key is None:  # **splat
                    return True, set()
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        else:
            return True, set()
    return (not saw_literal), keys


def _constructed_kwargs(fn: ast.FunctionDef, cls_name: str) -> Tuple[bool, Set[str]]:
    """(complete, keyword names) of the constructor call ``from_dict``
    builds -- ``cls(...)`` or ``ClassName(...)``."""
    kwargs: Set[str] = set()
    saw_call = False
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        callee = astutil.dotted_name(node.func)
        if callee not in ("cls", cls_name):
            continue
        saw_call = True
        for kw in node.keywords:
            if kw.arg is None:  # cls(**kwargs)
                return True, set()
            kwargs.add(kw.arg)
        if node.args:
            # Positional construction: cannot attribute args to fields.
            return True, set()
    return (not saw_call), kwargs
