"""SpMM oracle kernels vs dense NumPy matmul."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import COOMatrix, coo_to_csc, coo_to_csr, spmm_coo, spmm_csc, spmm_csr


@pytest.fixture
def dense_operand(small_coo, rng):
    return rng.random((small_coo.shape[1], 8), dtype=np.float32)


def test_spmm_csr_matches_dense(small_coo, dense_operand):
    expected = small_coo.to_dense() @ dense_operand
    result = spmm_csr(coo_to_csr(small_coo), dense_operand)
    np.testing.assert_allclose(result, expected, rtol=1e-5)


def test_spmm_csc_matches_dense(small_coo, dense_operand):
    expected = small_coo.to_dense() @ dense_operand
    result = spmm_csc(coo_to_csc(small_coo), dense_operand)
    np.testing.assert_allclose(result, expected, rtol=1e-5)


def test_spmm_coo_matches_dense(small_coo, dense_operand):
    expected = small_coo.to_dense() @ dense_operand
    np.testing.assert_allclose(spmm_coo(small_coo, dense_operand), expected, rtol=1e-5)


def test_all_three_agree(small_graph, rng):
    dense = rng.random((small_graph.shape[1], 16), dtype=np.float32)
    a = spmm_csr(coo_to_csr(small_graph), dense)
    b = spmm_csc(coo_to_csc(small_graph), dense)
    c = spmm_coo(small_graph, dense)
    np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)
    np.testing.assert_allclose(a, c, rtol=1e-4, atol=1e-5)


def test_empty_sparse_gives_zero(dense_operand):
    empty = COOMatrix.empty((3, 5))
    assert not spmm_coo(empty, dense_operand).any()


def test_zero_dense_gives_zero(small_coo):
    zeros = np.zeros((5, 4), dtype=np.float32)
    assert not spmm_csr(coo_to_csr(small_coo), zeros).any()


def test_identity_sparse_is_noop(rng):
    eye = COOMatrix.from_dense(np.eye(6, dtype=np.float32))
    dense = rng.random((6, 3), dtype=np.float32)
    np.testing.assert_allclose(spmm_csr(coo_to_csr(eye), dense), dense, rtol=1e-6)


def test_dimension_mismatch_csr(small_coo):
    with pytest.raises(ValueError, match="dimension mismatch"):
        spmm_csr(coo_to_csr(small_coo), np.ones((3, 2), dtype=np.float32))


def test_dimension_mismatch_csc(small_coo):
    with pytest.raises(ValueError, match="dimension mismatch"):
        spmm_csc(coo_to_csc(small_coo), np.ones((3, 2), dtype=np.float32))


def test_one_dimensional_dense_rejected(small_coo):
    with pytest.raises(ValueError, match="two-dimensional"):
        spmm_coo(small_coo, np.ones(5, dtype=np.float32))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 10),
    m=st.integers(1, 10),
    k=st.integers(1, 6),
    seed=st.integers(0, 1000),
    density=st.floats(0.0, 1.0),
)
def test_property_spmm_equals_dense(n, m, k, seed, density):
    rng = np.random.default_rng(seed)
    mask = rng.random((n, m)) < density
    dense_sparse = np.where(mask, rng.random((n, m)), 0.0).astype(np.float32)
    sparse = COOMatrix.from_dense(dense_sparse)
    dense = rng.random((m, k), dtype=np.float32)
    expected = dense_sparse.astype(np.float64) @ dense.astype(np.float64)
    for result in (
        spmm_csr(coo_to_csr(sparse), dense),
        spmm_csc(coo_to_csc(sparse), dense),
        spmm_coo(sparse, dense),
    ):
        np.testing.assert_allclose(result, expected, rtol=1e-4, atol=1e-5)
