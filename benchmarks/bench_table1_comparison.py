"""Table I: qualitative dataflow comparison of the implemented engines."""

from repro.bench import tables


def test_table1_comparison(benchmark, emit):
    text = benchmark.pedantic(tables.table1, rounds=1, iterations=1)
    emit("table1_comparison", text)
    assert "Hybrid (row + outer)" in text
