"""Entry point for ``python -m repro.devtools.analyzer``."""

import sys

from repro.devtools.analyzer.cli import main

if __name__ == "__main__":
    sys.exit(main())
