"""Summaries and comparisons of traces and run manifests.

Loaders plus the renderers used by the ``python -m repro.obs`` CLI:

* :func:`trace_report` -- per-phase cycle / DRAM-byte breakdown of one
  trace, cross-checked against the whole-run totals the obs CLI stores
  in ``otherData`` (the sums must match exactly -- the phase spans carry
  SimStats deltas built with the conservation invariant);
* :func:`wall_report` -- per-span wall-millisecond breakdown of a
  host-time trace (the files ``repro.telemetry.SpanRecorder`` writes;
  detected via ``otherData.clock == "wall"``);
* :func:`manifest_report` -- per-job host telemetry of one run manifest
  (status, attempts, wall time, peak RSS, timeouts);
* :func:`diff_report` -- side-by-side comparison of two traces (e.g.
  scalar vs batched engine, two accelerators), two manifests, or --
  the *two clocks* view -- one wall-clock span file against one
  simulated-time trace, joined by the correlation IDs both carry (see
  ``docs/observability.md``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench.report import format_table

#: Phase-span args summed by the trace report, in table order.
PHASE_FIELDS = (
    "cycles",
    "busy_cycles",
    "dram_read_bytes",
    "dram_write_bytes",
    "buffer_hits",
    "buffer_misses",
)


def load_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object at top level")
    return doc


def is_trace(doc: Mapping[str, Any]) -> bool:
    return isinstance(doc.get("traceEvents"), list)


def is_manifest(doc: Mapping[str, Any]) -> bool:
    return isinstance(doc.get("jobs"), list)


def is_wall_trace(doc: Mapping[str, Any]) -> bool:
    """A host-time span file (``SpanRecorder`` export): a trace whose
    declared clock is wall time rather than simulated cycles."""
    other = doc.get("otherData")
    return (
        is_trace(doc)
        and isinstance(other, dict)
        and other.get("clock") == "wall"
    )


def trace_corr_ids(doc: Mapping[str, Any]) -> List[str]:
    """Every correlation ID a trace carries, in first-seen order.

    Wall-clock span files stamp ``corr_id`` into event args; simulated
    traces recorded under a bound correlation carry one in
    ``otherData``.  The two-clocks diff joins on the intersection.
    """
    seen: List[str] = []
    other = doc.get("otherData")
    if isinstance(other, dict) and isinstance(other.get("corr_id"), str):
        seen.append(other["corr_id"])
    for event in doc.get("traceEvents", []):
        if not isinstance(event, dict):
            continue
        args = event.get("args")
        if isinstance(args, dict):
            cid = args.get("corr_id")
            if isinstance(cid, str) and cid not in seen:
                seen.append(cid)
    return seen


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
def phase_rows(doc: Mapping[str, Any]) -> List[Tuple[str, Dict[str, int]]]:
    """(phase, summed fields) per ``cat="phase"`` event, in trace order.

    Both phase spans and phase instants count: the ``drain`` tail is an
    instant carrying only cycles, and it must participate for the sums
    to reach the run totals.
    """
    rows: List[Tuple[str, Dict[str, int]]] = []
    for event in doc.get("traceEvents", []):
        if not isinstance(event, dict) or event.get("cat") != "phase":
            continue
        args = event.get("args")
        if not isinstance(args, dict) or "cycles" not in args:
            continue  # e.g. the "prepare" marker, which carries no counters
        rows.append(
            (
                str(event.get("name")),
                {f: int(args.get(f, 0)) for f in PHASE_FIELDS},
            )
        )
    return rows


def phase_sums(doc: Mapping[str, Any]) -> Dict[str, int]:
    """Per-field totals over every phase row."""
    sums = {f: 0 for f in PHASE_FIELDS}
    for _, fields in phase_rows(doc):
        for f in PHASE_FIELDS:
            sums[f] += fields[f]
    return sums


def trace_totals(doc: Mapping[str, Any]) -> Optional[Dict[str, int]]:
    """The whole-run SimStats totals the obs CLI stored, if present."""
    other = doc.get("otherData")
    if isinstance(other, dict) and isinstance(other.get("totals"), dict):
        return {k: int(v) for k, v in other["totals"].items()}
    return None


def trace_summary(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """Structured summary of one trace (the ``report --json`` payload)."""
    rows = phase_rows(doc)
    sums = phase_sums(doc)
    totals = trace_totals(doc)
    summary: Dict[str, Any] = {
        "n_events": len(doc.get("traceEvents", [])),
        "phases": {name: fields for name, fields in rows},
        "phase_sums": sums,
    }
    other = doc.get("otherData")
    if isinstance(other, dict) and isinstance(other.get("spec"), dict):
        summary["spec"] = other["spec"]
    if totals is not None:
        summary["totals"] = totals
        summary["sums_match_totals"] = all(
            sums[f] == totals.get(f, 0) for f in PHASE_FIELDS if f in totals
        )
    return summary


def trace_report(doc: Mapping[str, Any]) -> str:
    """Per-phase breakdown table of one trace."""
    rows = phase_rows(doc)
    sums = phase_sums(doc)
    headers = ["phase"] + list(PHASE_FIELDS)
    table_rows: List[Sequence[object]] = [
        [name] + [fields[f] for f in PHASE_FIELDS] for name, fields in rows
    ]
    table_rows.append(["TOTAL"] + [sums[f] for f in PHASE_FIELDS])
    lines = [format_table(headers, table_rows)]
    totals = trace_totals(doc)
    if totals is not None:
        checked = [f for f in PHASE_FIELDS if f in totals]
        ok = all(sums[f] == totals[f] for f in checked)
        lines.append(
            "phase sums match run totals"
            if ok
            else "MISMATCH: phase sums != run totals: "
            + ", ".join(
                f"{f} {sums[f]} != {totals[f]}"
                for f in checked
                if sums[f] != totals[f]
            )
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Wall-clock span files (host time)
# ----------------------------------------------------------------------
def host_span_rows(doc: Mapping[str, Any]) -> List[Tuple[str, Dict[str, Any]]]:
    """Aggregate ``cat="host"`` complete events per span name.

    ``ts``/``dur`` are microseconds on the recorder's wall clock; the
    rows report milliseconds.  Order is first appearance in the file
    (the recorder sorts events by start time).
    """
    rows: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for event in doc.get("traceEvents", []):
        if not isinstance(event, dict) or event.get("cat") != "host":
            continue
        if event.get("ph") != "X":
            continue
        name = str(event.get("name"))
        if name not in rows:
            rows[name] = {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
            order.append(name)
        dur_ms = float(event.get("dur", 0.0)) / 1000.0
        row = rows[name]
        row["count"] += 1
        row["total_ms"] += dur_ms
        row["max_ms"] = max(row["max_ms"], dur_ms)
    return [(name, rows[name]) for name in order]


def wall_summary(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """Structured summary of one wall-clock span file."""
    rows = host_span_rows(doc)
    other = doc.get("otherData")
    summary: Dict[str, Any] = {
        "clock": "wall",
        "n_events": len(doc.get("traceEvents", [])),
        "spans": {
            name: {
                "count": fields["count"],
                "total_ms": round(fields["total_ms"], 4),
                "mean_ms": round(fields["total_ms"] / fields["count"], 4),
                "max_ms": round(fields["max_ms"], 4),
            }
            for name, fields in rows
        },
        "corr_ids": trace_corr_ids(doc),
    }
    if isinstance(other, dict) and "epoch_s" in other:
        summary["epoch_s"] = other["epoch_s"]
    return summary


def wall_report(doc: Mapping[str, Any]) -> str:
    """Per-span wall-time table of one span file."""
    rows = host_span_rows(doc)
    headers = ["span", "count", "total ms", "mean ms", "max ms"]
    table: List[Sequence[object]] = [
        [
            name,
            fields["count"],
            round(fields["total_ms"], 3),
            round(fields["total_ms"] / fields["count"], 3),
            round(fields["max_ms"], 3),
        ]
        for name, fields in rows
    ]
    lines = ["clock: wall (host time)", format_table(headers, table)]
    corr_ids = trace_corr_ids(doc)
    if corr_ids:
        lines.append(
            f"correlation ids: {', '.join(corr_ids[:8])}"
            + (f" (+{len(corr_ids) - 8} more)" if len(corr_ids) > 8 else "")
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
def manifest_cache_effectiveness(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """Cache hits/misses/hit-rate of one manifest.

    Prefers the manifest's own aggregates (``cache_hits`` /
    ``cache_misses``, recorded since manifests learned them); older
    manifests fall back to counting job records by status, so a report
    over an old file still shows cache effectiveness.
    """
    jobs = [j for j in doc.get("jobs", []) if isinstance(j, dict)]
    hits = doc.get("cache_hits")
    if not isinstance(hits, int):
        hits = sum(1 for j in jobs if j.get("status") == "cache-hit")
    misses = doc.get("cache_misses")
    if not isinstance(misses, int):
        misses = len(jobs) - hits
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / total if total else 0.0,
    }


def manifest_report(doc: Mapping[str, Any]) -> str:
    """Per-job telemetry table of one run manifest."""
    jobs = doc.get("jobs", [])
    headers = [
        "label", "status", "attempts", "wall s", "rss MB", "timed out",
    ]
    rows: List[Sequence[object]] = []
    for job in jobs:
        if not isinstance(job, dict):
            continue
        rss_kb = job.get("max_rss_kb")
        rows.append(
            [
                str(job.get("label", job.get("fingerprint", "?"))),
                str(job.get("status", "?")),
                int(job.get("attempts", 0)),
                float(job.get("wall_seconds", 0.0)),
                round(rss_kb / 1024.0, 1) if rss_kb else "-",
                "yes" if job.get("timed_out") else "-",
            ]
        )
    lines = [format_table(headers, rows)]
    cache = manifest_cache_effectiveness(doc)
    lines.append(
        f"cache: {cache['hits']} hit{'s' if cache['hits'] != 1 else ''}, "
        f"{cache['misses']} miss{'es' if cache['misses'] != 1 else ''} "
        f"({cache['hit_rate']:.0%} hit rate)"
    )
    summary = doc.get("summary")
    if isinstance(summary, str):
        lines.append(summary)
    return "\n".join(lines)


def manifest_summary(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """Structured summary of one manifest (the ``report --json`` payload)."""
    jobs = [j for j in doc.get("jobs", []) if isinstance(j, dict)]
    by_status: Dict[str, int] = {}
    for job in jobs:
        status = str(job.get("status", "?"))
        by_status[status] = by_status.get(status, 0) + 1
    rss = [int(j["max_rss_kb"]) for j in jobs if j.get("max_rss_kb")]
    return {
        "n_jobs": len(jobs),
        "by_status": by_status,
        "total_wall_seconds": sum(
            float(j.get("wall_seconds", 0.0)) for j in jobs
        ),
        "timeouts": sum(1 for j in jobs if j.get("timed_out")),
        "retries": sum(
            max(0, int(j.get("attempts", 1)) - 1) for j in jobs
        ),
        "peak_rss_kb": max(rss) if rss else None,
        "cache": manifest_cache_effectiveness(doc),
    }


# ----------------------------------------------------------------------
# Diffs
# ----------------------------------------------------------------------
def diff_report(
    a: Mapping[str, Any], b: Mapping[str, Any], name_a: str, name_b: str
) -> str:
    """Compare two traces (per-phase cycles/bytes), two manifests
    (per-label wall time and status), or one wall-clock span file
    against one simulated-time trace (the two-clocks view)."""
    if is_wall_trace(a) != is_wall_trace(b) and is_trace(a) and is_trace(b):
        wall, sim = (a, b) if is_wall_trace(a) else (b, a)
        wall_name, sim_name = (
            (name_a, name_b) if is_wall_trace(a) else (name_b, name_a)
        )
        return two_clocks_report(wall, sim, wall_name, sim_name)
    if is_trace(a) and is_trace(b):
        return _diff_traces(a, b, name_a, name_b)
    if is_manifest(a) and is_manifest(b):
        return _diff_manifests(a, b, name_a, name_b)
    raise ValueError(
        "diff needs two traces or two manifests "
        f"({name_a} is {'trace' if is_trace(a) else 'manifest?'}, "
        f"{name_b} is {'trace' if is_trace(b) else 'manifest?'})"
    )


def two_clocks_report(
    wall: Mapping[str, Any],
    sim: Mapping[str, Any],
    wall_name: str,
    sim_name: str,
) -> str:
    """Host wall time next to simulated cycles for one correlated run.

    The two files measure *different clocks*: the span file records how
    long the host spent (queueing, cache probes, executing the
    simulator), the trace records how long the modelled hardware would
    take (cycles).  They join on the correlation ID the serving path
    mints at ``/submit`` and threads through both recorders.
    """
    wall_ids = trace_corr_ids(wall)
    sim_ids = trace_corr_ids(sim)
    shared = [cid for cid in wall_ids if cid in sim_ids]
    lines = [f"two clocks: {wall_name} (host wall) vs {sim_name} (simulated)"]
    if shared:
        lines.append(f"correlated: shared corr_id {', '.join(shared)}")
    elif wall_ids or sim_ids:
        lines.append(
            "not correlated: no shared corr_id "
            f"(wall: {', '.join(wall_ids) or 'none'}; "
            f"sim: {', '.join(sim_ids) or 'none'})"
        )
    lines.append("")
    lines.append(f"host spans (wall ms) -- {wall_name}:")
    lines.append(wall_report(wall))
    lines.append("")
    lines.append(f"simulated phases (cycles) -- {sim_name}:")
    lines.append(trace_report(sim))
    return "\n".join(lines)


def _ratio(x: int, y: int) -> str:
    if y == 0:
        return "-" if x == 0 else "inf"
    return f"{x / y:.3f}x"


def _diff_traces(
    a: Mapping[str, Any], b: Mapping[str, Any], name_a: str, name_b: str
) -> str:
    rows_a = dict(phase_rows(a))
    rows_b = dict(phase_rows(b))
    order = list(rows_a)
    order.extend(p for p in rows_b if p not in rows_a)
    headers = [
        "phase",
        f"cycles {name_a}",
        f"cycles {name_b}",
        "ratio",
        f"dram B {name_a}",
        f"dram B {name_b}",
    ]
    table: List[Sequence[object]] = []
    for phase in order:
        fa = rows_a.get(phase)
        fb = rows_b.get(phase)
        ca = fa["cycles"] if fa else 0
        cb = fb["cycles"] if fb else 0
        da = (fa["dram_read_bytes"] + fa["dram_write_bytes"]) if fa else 0
        db = (fb["dram_read_bytes"] + fb["dram_write_bytes"]) if fb else 0
        table.append([phase, ca, cb, _ratio(ca, cb), da, db])
    sums_a = phase_sums(a)
    sums_b = phase_sums(b)
    table.append(
        [
            "TOTAL",
            sums_a["cycles"],
            sums_b["cycles"],
            _ratio(sums_a["cycles"], sums_b["cycles"]),
            sums_a["dram_read_bytes"] + sums_a["dram_write_bytes"],
            sums_b["dram_read_bytes"] + sums_b["dram_write_bytes"],
        ]
    )
    return format_table(headers, table)


def _diff_manifests(
    a: Mapping[str, Any], b: Mapping[str, Any], name_a: str, name_b: str
) -> str:
    jobs_a = {
        str(j.get("label")): j for j in a.get("jobs", []) if isinstance(j, dict)
    }
    jobs_b = {
        str(j.get("label")): j for j in b.get("jobs", []) if isinstance(j, dict)
    }
    order = list(jobs_a)
    order.extend(label for label in jobs_b if label not in jobs_a)
    headers = [
        "label",
        f"status {name_a}",
        f"status {name_b}",
        f"wall s {name_a}",
        f"wall s {name_b}",
    ]
    table: List[Sequence[object]] = []
    for label in order:
        ja = jobs_a.get(label)
        jb = jobs_b.get(label)
        table.append(
            [
                label,
                str(ja.get("status")) if ja else "-",
                str(jb.get("status")) if jb else "-",
                float(ja.get("wall_seconds", 0.0)) if ja else "-",
                float(jb.get("wall_seconds", 0.0)) if jb else "-",
            ]
        )
    return format_table(headers, table)
