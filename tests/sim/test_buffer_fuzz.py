"""Differential fuzz: arena ``CacheBuffer`` vs the legacy dict buffer.

The slot-arena rewrite of :class:`repro.sim.buffer.CacheBuffer` is a
pure representation change -- every public-API return value and every
``SimStats`` counter must match the pre-arena implementation
bit-for-bit on *any* operation sequence, not just the ones the
equivalence suite happens to exercise.  This test drives both cores
through identical randomized streams of
``read``/``write``/``accumulate``/``flush``/``reclassify``/
``invalidate``/``evict_priority`` operations with adversarial class
pressure (address pool >> capacity, skewed class choice) and MSHR
saturation (few MSHR entries, bursts of distinct-miss reads), checking
return values after every operation and the full stats dict plus all
residency observables at the end.

The oracle is ``tests/sim/reference_buffer._ReferenceBuffer`` -- the
legacy per-line ``_Line``-object / ``heapq``-MSHR implementation,
preserved verbatim.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.sim.buffer import ALL_CLASSES, CLASS_OUT, CLASS_PARTIAL, CacheBuffer
from repro.sim.memory import DRAM, DRAMConfig
from repro.sim.stats import SimStats

from tests.sim.reference_buffer import _ReferenceBuffer

#: Randomized operations per seed (the acceptance floor is 1000).
N_OPS = 1200
SEEDS = (0, 1, 2, 3, 4)

#: Small geometry so the stream constantly evicts and stalls:
#: pool of 96 addresses over 24 lines, 4 MSHRs.
CAPACITY_LINES = 24
LINE_BYTES = 64
MSHR_ENTRIES = 4
N_ADDRS = 96


def _make_pair():
    """One (reference, arena) pair over independent but identically
    configured memory systems."""
    pair = []
    for factory in (_ReferenceBuffer, CacheBuffer):
        stats = SimStats()
        dram = DRAM(DRAMConfig(), stats)
        buf = factory(
            capacity_lines=CAPACITY_LINES,
            line_bytes=LINE_BYTES,
            dram=dram,
            stats=stats,
            mshr_entries=MSHR_ENTRIES,
        )
        pair.append((buf, dram, stats))
    return pair


def _observables(buf) -> dict:
    return {
        "size": buf.size_lines,
        "occupancy": buf.occupancy_by_class(),
        "per_class": {c: buf.resident_lines(c) for c in ALL_CLASSES},
        "priority": buf.evict_priority,
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_fuzz(seed):
    rng = random.Random(seed)
    (ref, ref_dram, ref_stats), (arena, arena_dram, arena_stats) = _make_pair()
    addrs = [0x1000 + i * LINE_BYTES for i in range(N_ADDRS)]
    cycle = 0.0

    for step in range(N_OPS):
        # Nondecreasing cycle on the DRAM's 1/64 grid (the same grid
        # real engine timelines live on).
        cycle += rng.randrange(0, 256) / 64.0
        op = rng.randrange(100)
        # Skew toward reads/writes with occasional structural ops, plus
        # miss bursts that saturate the 4 MSHRs with distinct addresses.
        if op < 40:
            burst = rng.randrange(1, 8) if op < 8 else 1
            for _ in range(burst):
                addr = rng.choice(addrs)
                cls = rng.choice(ALL_CLASSES)
                tag = rng.choice(("adj", "feat", cls))
                assert ref.read(cycle, addr, cls, tag) == arena.read(
                    cycle, addr, cls, tag
                ), f"read mismatch at step {step}"
        elif op < 65:
            addr = rng.choice(addrs)
            cls = rng.choice(ALL_CLASSES)
            allocate = rng.random() < 0.8
            assert ref.write(cycle, addr, cls, cls, allocate=allocate) == arena.write(
                cycle, addr, cls, cls, allocate=allocate
            ), f"write mismatch at step {step}"
        elif op < 85:
            addr = rng.choice(addrs)
            assert ref.accumulate(cycle, addr) == arena.accumulate(
                cycle, addr
            ), f"accumulate mismatch at step {step}"
        elif op < 90:
            cls = rng.choice((None,) + ALL_CLASSES)
            assert ref.flush(cycle, cls) == arena.flush(
                cycle, cls
            ), f"flush mismatch at step {step}"
        elif op < 93:
            cls = rng.choice(ALL_CLASSES)
            assert ref.invalidate(cls) == arena.invalidate(
                cls
            ), f"invalidate mismatch at step {step}"
        elif op < 96:
            src, dst = rng.sample(ALL_CLASSES, 2)
            assert ref.reclassify(src, dst) == arena.reclassify(
                src, dst
            ), f"reclassify mismatch at step {step}"
        elif op < 98:
            order = list(ALL_CLASSES)
            rng.shuffle(order)
            ref.evict_priority = tuple(order)
            arena.evict_priority = tuple(order)
        else:
            assert ref.drop_spilled_partials() == arena.drop_spilled_partials()

        if step % 64 == 0:
            # Residency probes are side-effect-free and must agree.
            probe = np.asarray(rng.sample(addrs, 16), dtype=np.int64)
            assert (
                ref.classify_batch(probe).tolist()
                == arena.classify_batch(probe).tolist()
            )
            a = rng.choice(addrs)
            assert ref.contains(a) == arena.contains(a)
            assert _observables(ref) == _observables(arena), f"step {step}"

    # Full end-state equality: stats bit-for-bit, residency, DRAM clock.
    assert ref_stats.to_dict() == arena_stats.to_dict()
    assert _observables(ref) == _observables(arena)
    assert ref_dram.next_free == arena_dram.next_free
    assert [ref.contains(a) for a in addrs] == [arena.contains(a) for a in addrs]


def _make_engine_pair(
    mshr_entries=MSHR_ENTRIES,
    capacity_lines=CAPACITY_LINES,
    lsq_depth=16,
    forwarding=True,
):
    """(scalar engine over the legacy reference buffer, batched engine
    over the arena buffer) with identical geometry -- the full
    cross-implementation differential: the batched engine's epoch and
    lane fast paths against the scalar loops over the legacy core."""
    from repro.sim.engine import make_engine

    out = []
    for factory, engine_kind in ((_ReferenceBuffer, "scalar"), (CacheBuffer, "batched")):
        stats = SimStats()
        dram = DRAM(DRAMConfig(), stats)
        buf = factory(
            capacity_lines=capacity_lines,
            line_bytes=LINE_BYTES,
            dram=dram,
            stats=stats,
            mshr_entries=mshr_entries,
        )
        engine = make_engine(
            engine_kind, buf, dram, stats,
            lsq_depth=lsq_depth, forwarding=forwarding,
        )
        out.append((engine, buf, dram, stats))
    return out


def _assert_engines_agree(pair, context=""):
    (se, sb, sd, ss), (be, bb, bd, bs) = pair
    assert ss.to_dict() == bs.to_dict(), f"stats diverge {context}"
    assert (se.issue_t, se.write_t, se.exec_t) == (
        be.issue_t, be.write_t, be.exec_t
    ), f"timelines diverge {context}"
    assert sd.next_free == bd.next_free, f"DRAM clock diverges {context}"
    assert _observables(sb) == _observables(bb), f"residency diverges {context}"


class TestEpochEngineDifferential:
    """Drive the epoch-vectorized miss path (batched engine + arena)
    against the scalar reference loops over the legacy buffer.

    Batches of >= 8 fresh misses engage ``_miss_epoch``/``_store_epoch``
    (``_EPOCH_MIN``); the cases below force the epoch *cut* conditions
    -- duplicates inside a run, residency feedback from in-batch fills,
    MSHR capacity stalls, victim exhaustion -- where the vectorized
    bookkeeping is most likely to diverge from the sequential truth.
    """

    # Two disjoint address spaces (bit 40 apart, like AddressMap's
    # operand spacing) keep loads off the store-forwarding window, so
    # the load segments reach the epoch path under forwarding=True too.
    LOAD_BASE = 0x100_0000_0000
    STORE_BASE = 0x200_0000_0000

    def _laddr(self, i):
        return self.LOAD_BASE + i * LINE_BYTES

    def _saddr(self, i):
        return self.STORE_BASE + i * LINE_BYTES

    def _both(self, pair, method, *args):
        for engine, _, _, _ in pair:
            getattr(engine, method)(*args)

    def test_miss_burst_then_refeed(self):
        """A fresh distinct-address burst (pure epoch) followed by the
        same addresses again (all-hit feedback from the epoch's own
        fills)."""
        pair = _make_engine_pair()
        burst = np.asarray([self._laddr(i) for i in range(16)], dtype=np.int64)
        self._both(pair, "mac_load_batch", burst, "W", "adj")
        _assert_engines_agree(pair, "after burst")
        self._both(pair, "mac_load_batch", burst, "W", "adj")
        _assert_engines_agree(pair, "after refeed")

    def test_duplicate_inside_miss_run(self):
        """A duplicate inside a would-be epoch run forces a cut: the
        second occurrence must see the first's fill."""
        pair = _make_engine_pair()
        idx = [0, 1, 2, 3, 4, 5, 6, 7, 8, 3, 9, 10, 11, 12, 13, 14]
        addrs = np.asarray([self._laddr(i) for i in idx], dtype=np.int64)
        self._both(pair, "load_batch", addrs, "XW", "feat")
        _assert_engines_agree(pair)

    def test_mshr_saturation_inside_epoch(self):
        """More distinct misses in one batch than MSHR entries: the
        epoch's cumulative capacity walk must stall exactly like the
        scalar retire loop."""
        pair = _make_engine_pair(mshr_entries=2)
        addrs = np.asarray([self._laddr(i) for i in range(20)], dtype=np.int64)
        self._both(pair, "mac_load_batch", addrs, "W", "adj")
        _assert_engines_agree(pair)

    def test_capacity_chunking_and_victim_exhaustion(self):
        """A miss run larger than the whole buffer: the epoch must cut
        at free+victim exhaustion and chunk through, evicting its own
        earlier fills."""
        pair = _make_engine_pair(capacity_lines=12)
        addrs = np.asarray([self._laddr(i) for i in range(40)], dtype=np.int64)
        self._both(pair, "mac_load_batch", addrs, "W", "adj")
        _assert_engines_agree(pair, "after overflow burst")
        # Second pass: everything was evicted or is LRU-fragile.
        self._both(pair, "load_batch", addrs, "W", "adj")
        _assert_engines_agree(pair, "after second pass")

    def test_store_epoch_with_dirty_victims(self):
        """Store bursts that evict dirty lines: the store epoch's
        writeback channel bumps must serialize like the scalar path."""
        pair = _make_engine_pair(capacity_lines=12)
        first = np.asarray([self._saddr(i) for i in range(12)], dtype=np.int64)
        second = np.asarray(
            [self._saddr(i) for i in range(12, 30)], dtype=np.int64
        )
        self._both(pair, "store_batch", first, CLASS_OUT, "out")
        self._both(pair, "store_batch", second, CLASS_OUT, "out")
        _assert_engines_agree(pair)

    def test_accumulate_epoch_partial_spill(self):
        """Partial-accumulate bursts past capacity: spilled-partial
        bookkeeping, footprint peak and timeline must match."""
        pair = _make_engine_pair(capacity_lines=10)
        addrs = np.asarray([self._saddr(i) for i in range(32)], dtype=np.int64)
        self._both(pair, "accumulate_store_batch", addrs, "partial")
        _assert_engines_agree(pair, "after spill burst")
        # Re-accumulate into a mix of resident, evicted and spilled
        # lines -- the epoch run scan must exclude spilled addresses.
        self._both(pair, "accumulate_store_batch", addrs[:20], "partial")
        _assert_engines_agree(pair, "after re-accumulate")

    def test_forwarding_disabled_epochs(self):
        """With forwarding off every load segment is epoch-eligible,
        even interleaved with stores to the same space."""
        pair = _make_engine_pair(forwarding=False)
        stores = np.asarray([self._laddr(i) for i in range(10)], dtype=np.int64)
        loads = np.asarray([self._laddr(i) for i in range(4, 24)], dtype=np.int64)
        self._both(pair, "store_batch", stores, CLASS_OUT, "out")
        self._both(pair, "mac_load_batch", loads, "W", "adj")
        _assert_engines_agree(pair)

    # ------------------------------------------------------------------
    # Merge/RMW epochs (``_merge_hit_epoch`` / ``_merge_miss_epoch``):
    # runs of >= 64 (``_MERGE_HIT_MIN``) distinct resident
    # already-touched addresses take the one-commit steady-state path.
    # ------------------------------------------------------------------

    #: Comfortably past ``_MERGE_HIT_MIN`` so cut runs stay eligible.
    MERGE_N = 160

    def _merge_pair(self, capacity_lines=256, lsq_depth=128, **kw):
        """Engine pair plus one ``touched`` set per engine (the caller-
        owned cross-batch first-touch set; separate objects because the
        engines mutate it, identical contents by construction).  The
        hit-epoch gather is capped at ``lsq_depth`` frames per attempt,
        so the production depth (128 >= ``_MERGE_HIT_MIN``) is the
        default here -- the suite-wide 16 would never engage it."""
        pair = _make_engine_pair(
            capacity_lines=capacity_lines, lsq_depth=lsq_depth, **kw
        )
        return pair, [set(), set()]

    def _merge_both(self, pair, touched, addrs, track_peak=True):
        for (engine, _, _, _), t in zip(pair, touched):
            engine.merge_rmw_batch(addrs, CLASS_PARTIAL, "partial", t, track_peak)

    def test_merge_first_touch_then_steady_state(self):
        """First pass write-allocates every line (merge miss epoch);
        the next two passes are pure RMW-hit runs (merge hit epoch,
        then again with the LRU order the first epoch left behind)."""
        pair, touched = self._merge_pair()
        addrs = np.asarray(
            [self._saddr(i) for i in range(self.MERGE_N)], dtype=np.int64
        )
        self._merge_both(pair, touched, addrs)
        _assert_engines_agree(pair, "after first touch")
        self._merge_both(pair, touched, addrs)
        _assert_engines_agree(pair, "after steady-state pass")
        self._merge_both(pair, touched, addrs)
        _assert_engines_agree(pair, "after second steady-state pass")

    def test_merge_duplicate_cuts_hit_run(self):
        """A duplicate inside a would-be merge-hit run: past the
        threshold the run is cut at the repeat (second occurrence must
        see the first frame's store-back); before the threshold the
        epoch declines entirely to the flat rmw loop."""
        for dup_at in (80, 10):
            pair, touched = self._merge_pair()
            idx = list(range(self.MERGE_N))
            idx.insert(dup_at, 5)
            addrs = np.asarray([self._saddr(i) for i in idx], dtype=np.int64)
            self._merge_both(pair, touched, addrs)
            _assert_engines_agree(pair, f"first touch dup@{dup_at}")
            self._merge_both(pair, touched, addrs)
            _assert_engines_agree(pair, f"steady state dup@{dup_at}")

    def test_merge_untouched_address_cuts_run(self):
        """An untouched address mid-run cuts the hit run there: the
        first 100 addresses RMW as one epoch, the rest first-touch."""
        pair, touched = self._merge_pair()
        warm = np.asarray([self._saddr(i) for i in range(100)], dtype=np.int64)
        self._merge_both(pair, touched, warm)
        _assert_engines_agree(pair, "after warmup")
        full = np.asarray(
            [self._saddr(i) for i in range(self.MERGE_N)], dtype=np.int64
        )
        self._merge_both(pair, touched, full)
        _assert_engines_agree(pair, "after cut run")

    def test_merge_forwarding_window_overlap_resolves(self):
        """The forwarding window still holds the tail of the previous
        pass's store-backs when the next pass starts: the overlap must
        resolve (in-run stores never serve in-run loads -- distinct
        addresses) rather than decline, and match the scalar engine's
        forwarding accounting exactly."""
        pair, touched = self._merge_pair()
        addrs = np.asarray(
            [self._saddr(i) for i in range(self.MERGE_N)], dtype=np.int64
        )
        self._merge_both(pair, touched, addrs)
        # Immediately re-merge: the window overlaps the run's tail.
        self._merge_both(pair, touched, addrs)
        _assert_engines_agree(pair, "after overlapping steady-state pass")
        # And a third pass starting *at* the windowed tail.
        self._merge_both(pair, touched, addrs[-self.MERGE_N // 2:])
        _assert_engines_agree(pair, "after tail pass")

    def test_merge_mixed_space_run_declines(self):
        """A monotone run spanning two address spaces while the window
        overlaps it: the epoch declines to the flat loop (per-space
        insert tracking is not worth the vanishing case), which must be
        invisible in the results."""
        pair, touched = self._merge_pair()
        lo = [self._laddr(i) for i in range(80)]
        hi = [self._saddr(i) for i in range(80)]
        addrs = np.asarray(lo + hi, dtype=np.int64)
        self._merge_both(pair, touched, addrs)
        _assert_engines_agree(pair, "after mixed-space first touch")
        self._merge_both(pair, touched, addrs)
        _assert_engines_agree(pair, "after mixed-space steady state")

    def test_merge_eviction_pressure(self):
        """Runs far past capacity: touched-but-evicted lines RMW-miss,
        the epoch cuts at residency boundaries, and the footprint peak
        tracking must match through the evictions."""
        pair, touched = self._merge_pair(capacity_lines=24)
        addrs = np.asarray(
            [self._saddr(i) for i in range(self.MERGE_N)], dtype=np.int64
        )
        self._merge_both(pair, touched, addrs)
        _assert_engines_agree(pair, "after overflow merge")
        self._merge_both(pair, touched, addrs)
        _assert_engines_agree(pair, "after second overflow merge")

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_adversarial_merge_fuzz(self, seed):
        """Randomized merge traffic against the scalar truth: long
        distinct runs re-merged at varying offsets, duplicates and
        untouched addresses salted in, interleaved loads sharing the
        buffer, invalidates that turn touched lines into RMW misses."""
        rng = random.Random(seed)
        pair, touched = self._merge_pair(capacity_lines=128)
        for step in range(40):
            kind = rng.randrange(10)
            if kind < 6:  # merge runs, mostly long, sometimes offset
                base = rng.randrange(0, 60)
                n = rng.randrange(48, 200)
                idx = list(range(base, base + n))
                if rng.random() < 0.4:  # salt a duplicate
                    idx.insert(rng.randrange(len(idx)), rng.choice(idx))
                addrs = np.asarray(
                    [self._saddr(i) for i in idx], dtype=np.int64
                )
                self._merge_both(pair, touched, addrs, rng.random() < 0.7)
            elif kind < 8:  # loads sharing the buffer halves
                base = rng.randrange(0, 200)
                addrs = np.asarray(
                    [self._laddr(base + i) for i in range(rng.randrange(8, 40))],
                    dtype=np.int64,
                )
                self._both(pair, "mac_load_batch", addrs, "W", "adj")
            elif kind < 9:  # invalidate: touched lines now RMW-miss
                for _, buf, _, _ in pair:
                    buf.invalidate(CLASS_PARTIAL)
            else:  # partial-output flush boundary, then spill cleanup
                for _, buf, _, _ in pair:
                    buf.flush(float(step), CLASS_PARTIAL)
                if rng.random() < 0.5:
                    for _, buf, _, _ in pair:
                        buf.drop_spilled_partials()
            _assert_engines_agree(pair, f"seed {seed} step {step}")

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_adversarial_epoch_fuzz(self, seed):
        """Randomized batch streams skewed toward epoch-shaped work:
        long distinct runs, partial overlaps with recent fills,
        duplicates, store/accumulate pressure, occasional invalidates.
        Stats, timelines, DRAM clock and residency compared after every
        batch."""
        rng = random.Random(seed)
        pair = _make_engine_pair(mshr_entries=4, capacity_lines=24)
        hot: list = []
        for step in range(60):
            kind = rng.randrange(10)
            n = rng.randrange(8, 40)
            if kind < 4:  # loads: fresh run, maybe salted with hot addrs
                base = rng.randrange(0, 400)
                idx = list(range(base, base + n))
                if hot and rng.random() < 0.5:
                    for _ in range(rng.randrange(1, 5)):
                        idx.insert(
                            rng.randrange(len(idx)), rng.choice(hot)
                        )
                addrs = np.asarray(
                    [self._laddr(i) for i in idx], dtype=np.int64
                )
                method = "mac_load_batch" if kind < 2 else "load_batch"
                cls = rng.choice(("W", "XW"))
                self._both(pair, method, addrs, cls, "adj")
                hot = idx[-12:]
            elif kind < 7:  # stores
                base = rng.randrange(0, 200)
                addrs = np.asarray(
                    [self._saddr(base + i) for i in range(n)], dtype=np.int64
                )
                allocate = rng.random() < 0.8
                self._both(pair, "store_batch", addrs, CLASS_OUT, "out", allocate)
            elif kind < 9:  # partial accumulates
                base = rng.randrange(0, 100)
                addrs = np.asarray(
                    [self._saddr(0x4000 + base + i) for i in range(n)],
                    dtype=np.int64,
                )
                self._both(pair, "accumulate_store_batch", addrs, "partial")
            else:  # structural ops between batches
                cls = rng.choice(ALL_CLASSES)
                for _, buf, _, _ in pair:
                    buf.invalidate(cls)
                if rng.random() < 0.5:
                    for _, buf, _, _ in pair:
                        buf.drop_spilled_partials()
            _assert_engines_agree(pair, f"seed {seed} step {step}")


def test_mshr_saturation_ordering():
    """A pure distinct-address miss storm: with 4 MSHRs every fifth
    miss stalls, and the stall/retire order the FIFO ring produces must
    match the reference heap exactly (monotone ready-times make them
    order-equivalent; this pins the proof down with returns)."""
    (ref, _, ref_stats), (arena, _, arena_stats) = _make_pair()
    for i in range(4 * MSHR_ENTRIES + 3):
        addr = 0x9000 + i * LINE_BYTES
        assert ref.read(0.0, addr, "W", "storm") == arena.read(
            0.0, addr, "W", "storm"
        ), f"miss {i}"
    assert ref_stats.to_dict() == arena_stats.to_dict()
