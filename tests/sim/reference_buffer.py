"""Test-only reference copy of the legacy dict-based buffer core.

This is the pre-arena ``CacheBuffer`` implementation (per-line ``_Line``
objects in per-class ``OrderedDict`` LRU maps, a ``heapq`` MSHR file),
preserved verbatim as the oracle for the differential fuzz test in
``test_buffer_fuzz.py``.  The production arena core in
``repro.sim.buffer`` must match its public-API return values and its
``SimStats`` bit-for-bit on any operation sequence.

Do not import this outside the test suite.
"""


from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.sim.memory import DRAM
from repro.sim.stats import SimStats

CLASS_W = "W"
CLASS_XW = "XW"
CLASS_OUT = "AXW"
CLASS_PARTIAL = "partial"

#: Every line class the buffer knows about.
ALL_CLASSES = (CLASS_W, CLASS_XW, CLASS_OUT, CLASS_PARTIAL)

#: Paper eviction order: weights first, then combination results; final
#: outputs and partial outputs are retained as long as possible.
DEFAULT_EVICT_PRIORITY = (CLASS_W, CLASS_XW, CLASS_OUT, CLASS_PARTIAL)


class _Line:
    """One resident line.

    A ``__slots__`` class rather than a dataclass: the engines touch
    these attributes once per simulated access.  ``owner`` is the
    per-class LRU ``OrderedDict`` the line currently lives in (kept in
    sync by ``_insert``/``reclassify``), so a hit can LRU-touch without
    re-deriving ``self._sets[line.cls]``.
    """

    __slots__ = ("cls", "dirty", "ready", "owner")

    def __init__(
        self,
        cls: str,
        dirty: bool,
        ready: float,
        owner: "OrderedDict[int, _Line]",
    ) -> None:
        self.cls = cls
        self.dirty = dirty
        #: Cycle at which the line's data is valid on-chip.
        self.ready = ready
        self.owner = owner


class _ReferenceBuffer:
    """The legacy dict/heap CacheBuffer, kept verbatim as the fuzz oracle."""

    def __init__(
        self,
        capacity_lines: int,
        line_bytes: int,
        dram: DRAM,
        stats: SimStats,
        hit_latency: int = 1,
        mshr_entries: int = 16,
        evict_priority: Tuple[str, ...] = DEFAULT_EVICT_PRIORITY,
        lru: bool = True,
    ) -> None:
        if capacity_lines <= 0:
            raise ValueError("capacity_lines must be positive")
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        if mshr_entries <= 0:
            raise ValueError("mshr_entries must be positive")
        self.capacity_lines = capacity_lines
        self.line_bytes = line_bytes
        self.dram = dram
        self.stats = stats
        self.hit_latency = hit_latency
        self.mshr_entries = mshr_entries
        self.lru = lru
        # Per-class LRU maps: addr -> _Line, insertion/MRU order at the end.
        self._sets: Dict[str, "OrderedDict[int, _Line]"] = {
            cls: OrderedDict() for cls in ALL_CLASSES
        }
        # Unified residency index (addr -> _Line across all classes):
        # the single-probe tag lookup both the scalar `read` path and
        # the batched engine's inlined hit path share.  Kept in sync by
        # _insert/_evict/flush/invalidate; `reclassify` only relabels
        # the line object, which the index aliases.
        self._index: Dict[int, _Line] = {}
        self._evict_priority: Tuple[str, ...] = ()
        self.evict_priority = evict_priority
        self._size = 0
        # MSHRs: addr -> ready cycle, plus a heap for capacity stalls.
        self._outstanding: Dict[int, float] = {}
        self._mshr_heap: List[Tuple[float, int]] = []
        # Partial lines evicted to DRAM whose value is a partial sum.
        self._spilled_partials: Set[int] = set()
        # Precomputed DRAM constants, so the single-frame miss path
        # below evolves ``dram.next_free`` with arithmetic bit-identical
        # to DRAM.read/write without walking the call chain per miss.
        self._line_cost = dram.config.cycles_for(line_bytes)
        self._read_latency = dram.config.latency_cycles

    # ------------------------------------------------------------------
    # Introspection / configuration
    # ------------------------------------------------------------------
    @property
    def evict_priority(self) -> Tuple[str, ...]:
        """Current victim-class order (first = evicted first).

        Settable between phases: the unified DMB "can manage the space
        for input and output data dynamically" (Section III), so the
        hybrid scheduler biases eviction toward the class the current
        dataflow will not reuse.
        """
        return self._evict_priority

    @evict_priority.setter
    def evict_priority(self, order: Iterable[str]) -> None:
        order = tuple(order)
        if sorted(order) != sorted(ALL_CLASSES):
            raise ValueError(
                f"evict_priority must be a permutation of {ALL_CLASSES}, got {order}"
            )
        self._evict_priority = order

    @property
    def size_lines(self) -> int:
        """Lines currently resident."""
        return self._size

    def contains(self, addr: int) -> bool:
        """Whether the address is resident (no LRU side effects)."""
        return addr in self._index

    def route(self, cls: str) -> "CacheBuffer":
        """The physical buffer requests of class ``cls`` land in.

        The unified DMB is one buffer, so this is ``self``; the split
        organisation overrides it.  The batched engine resolves the
        route once per address batch instead of once per address.
        """
        return self

    def classify_batch(self, addrs: "np.ndarray") -> "np.ndarray":
        """Residency mask for a whole address batch (no LRU effects).

        One vectorised membership pass against the unified index.  The
        mask is only a valid *plan* while residency is invariant -- the
        batched engine uses it for stream loads (which never allocate)
        and falls back to per-address probes whenever an access could
        insert or evict lines mid-batch.
        """
        index = self._index
        if not index:
            return np.zeros(len(addrs), dtype=bool)
        return np.fromiter(
            map(index.__contains__, addrs.tolist()), dtype=bool, count=len(addrs)
        )

    def resident_lines(self, cls: str) -> int:
        """Resident line count of one class."""
        return len(self._sets[cls])

    def occupancy_by_class(self) -> Dict[str, int]:
        """Lines held per class -- the Section III "dynamic space
        management" observable: during RWP phases the buffer fills with
        XW, during OP phases with partial outputs."""
        return {cls: len(lines) for cls, lines in self._sets.items()}

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def read(self, cycle: float, addr: int, cls: str, tag: str) -> Tuple[float, float]:
        """Demand read of one line.

        Returns ``(ready_cycle, issue_cycle)``; ``issue_cycle >= cycle``
        when the request had to stall for a free MSHR.
        """
        line = self._index.get(addr)
        if line is not None:
            self._touch(addr, line.cls)
            self.stats.buffer_hits[tag] += 1
            return max(cycle + self.hit_latency, line.ready), cycle
        self.stats.buffer_misses[tag] += 1
        pending = self._outstanding.get(addr)
        if pending is not None:
            # Secondary miss: merged into the pending MSHR, no new DRAM
            # traffic, but the data was not on-chip -> counts as a miss.
            return max(cycle + self.hit_latency, pending), cycle
        self.stats.dram_read_bytes[tag] += self.line_bytes
        return self._read_miss(cycle, addr, cls, tag)

    def _read_miss(
        self, cycle: float, addr: int, cls: str, tag: str
    ) -> Tuple[float, float]:
        """Primary-miss machinery in a single frame: MSHR acquire, DRAM
        fetch, miss registration, line insertion.

        Equivalent to ``_acquire_mshr`` + ``DRAM.read`` + ``_insert``
        minus the hit/miss/byte counters, which are the caller's (the
        batched engine folds them into one update per address batch;
        :meth:`read` pays them up front).
        """
        outstanding = self._outstanding
        heap = self._mshr_heap
        issue = float(cycle)
        # Retire completed misses.
        while heap and heap[0][0] <= issue:
            ready, a = heapq.heappop(heap)
            if outstanding.get(a) == ready:
                del outstanding[a]
        limit = self.mshr_entries
        while len(outstanding) >= limit:
            ready, a = heapq.heappop(heap)
            if outstanding.get(a) == ready:
                del outstanding[a]
            if ready > issue:
                issue = ready
        dram = self.dram
        start = dram.next_free
        if issue > start:
            start = issue
        end = start + self._line_cost
        dram.next_free = end
        ready = end + self._read_latency
        outstanding[addr] = ready
        heapq.heappush(heap, (ready, addr))
        self._insert(issue, addr, cls, dirty=False, ready=ready)
        return ready, issue

    def write(
        self, cycle: float, addr: int, cls: str, tag: str, allocate: bool = True
    ) -> float:
        """Full-line write (no fetch needed).

        ``allocate=False`` is write-through/no-allocate: the line goes
        straight to DRAM, which is how streaming outputs (RWP final
        results) avoid polluting the buffer.
        """
        line = self._find(addr)
        if line is not None:
            self.stats.buffer_hits[tag] += 1
            line.dirty = True
            line.ready = max(line.ready, cycle + self.hit_latency)
            self._touch(addr, line.cls)
            return cycle + self.hit_latency
        self.stats.buffer_misses[tag] += 1
        if allocate:
            self._insert(cycle, addr, cls, dirty=True, ready=cycle + self.hit_latency)
            return cycle + self.hit_latency
        self.dram.write(cycle, self.line_bytes, tag)
        return cycle + self.hit_latency

    def accumulate(self, cycle: float, addr: int, tag: str = CLASS_PARTIAL) -> float:
        """Merge one partial output into the buffer (near-memory adder).

        If the line was previously spilled, its DRAM copy is fetched and
        re-merged (demand read).  Footprint tracking feeds Fig. 10.
        """
        self.stats.partials_produced += 1
        line = self._find(addr)
        if line is not None:
            self.stats.buffer_hits[tag] += 1
            line.dirty = True
            line.ready = max(line.ready, cycle + self.hit_latency)
            self._touch(addr, line.cls)
            self._update_partial_peak()
            return cycle + self.hit_latency
        self.stats.buffer_misses[tag] += 1
        if addr in self._spilled_partials:
            issue = self._acquire_mshr(cycle)
            ready = self.dram.read(issue, self.line_bytes, tag)
            self._spilled_partials.discard(addr)
            self._insert(issue, addr, CLASS_PARTIAL, dirty=True, ready=ready)
            self._update_partial_peak()
            return ready
        self._insert(cycle, addr, CLASS_PARTIAL, dirty=True, ready=cycle + self.hit_latency)
        self._update_partial_peak()
        return cycle + self.hit_latency

    def flush(self, cycle: float, cls: Optional[str] = None, tag: Optional[str] = None) -> float:
        """Write back and drop lines (all classes, or one).

        Returns the cycle the last writeback finishes transferring.
        Clean lines are dropped silently.
        """
        end = float(cycle)
        classes = [cls] if cls is not None else list(self.evict_priority)
        for c in classes:
            lines = self._sets[c]
            for addr, line in list(lines.items()):
                if line.dirty:
                    end = self.dram.write(end, self.line_bytes, tag or c)
                    if c == CLASS_PARTIAL:
                        self._spilled_partials.add(addr)
                del lines[addr]
                del self._index[addr]
                self._size -= 1
        return end

    def invalidate(self, cls: str) -> int:
        """Drop all lines of a class *without* writeback.

        Used between phases/layers for data that is dead (e.g. XW after
        the aggregation that consumed it).  Returns lines dropped.
        """
        lines = self._sets[cls]
        n = len(lines)
        for addr in lines:
            del self._index[addr]
        lines.clear()
        self._size -= n
        return n

    def reclassify(self, from_cls: str, to_cls: str, cycle: float = 0.0) -> int:
        """Relabel all lines of one class as another, preserving LRU order.

        Used when partial outputs become final values (e.g. XW built by
        an outer-product combination): the data stays resident but now
        follows the destination class's eviction priority.  ``cycle`` is
        unused here but kept for interface parity with the split-buffer
        organisation, where reclassification costs writebacks.
        """
        src = self._sets[from_cls]
        dst = self._sets[to_cls]
        n = len(src)
        for addr, line in src.items():
            line.cls = to_cls
            line.owner = dst
            dst[addr] = line
        src.clear()
        return n

    def drop_spilled_partials(self) -> int:
        """Forget spill bookkeeping between phases; returns count dropped."""
        n = len(self._spilled_partials)
        self._spilled_partials.clear()
        return n

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _find(self, addr: int) -> Optional[_Line]:
        return self._index.get(addr)

    def _touch(self, addr: int, cls: str) -> None:
        if self.lru:
            self._sets[cls].move_to_end(addr)

    def _acquire_mshr(self, cycle: float) -> float:
        """Wait for a free MSHR; returns the (possibly delayed) issue cycle."""
        issue = float(cycle)
        # Retire completed misses.
        while self._mshr_heap and self._mshr_heap[0][0] <= issue:
            ready, addr = heapq.heappop(self._mshr_heap)
            if self._outstanding.get(addr) == ready:
                del self._outstanding[addr]
        while len(self._outstanding) >= self.mshr_entries:
            ready, addr = heapq.heappop(self._mshr_heap)
            if self._outstanding.get(addr) == ready:
                del self._outstanding[addr]
            issue = max(issue, ready)
        return issue

    def _insert(self, cycle: float, addr: int, cls: str, dirty: bool, ready: float) -> None:
        """Allocate one line, evicting until there is room.

        Victims come from the lowest-priority non-empty class, LRU
        within (front of the ordered dict is LRU when hits re-append
        and plain FIFO when they do not); the eviction loop is inlined
        into this frame -- the writeback arithmetic is bit-identical to
        ``DRAM.write`` via the precomputed ``_line_cost``.
        """
        sets = self._sets
        lines = sets.get(cls)
        if lines is None:
            raise ValueError(f"unknown line class {cls!r}")
        index = self._index
        size = self._size
        if size >= self.capacity_lines:
            stats = self.stats
            dram = self.dram
            nbytes = self.line_bytes
            line_cost = self._line_cost
            capacity = self.capacity_lines
            while size >= capacity:
                for c in self._evict_priority:
                    victims = sets[c]
                    if victims:
                        a, victim = victims.popitem(last=False)
                        del index[a]
                        size -= 1
                        if victim.dirty:
                            stats.dram_write_bytes[c] += nbytes
                            start = dram.next_free
                            if cycle > start:
                                start = cycle
                            dram.next_free = start + line_cost
                            if c == CLASS_PARTIAL:
                                self._spilled_partials.add(a)
                                stats.partial_spill_bytes += nbytes
                        break
                else:
                    raise RuntimeError("evict called on an empty buffer")
        line = _Line(cls, dirty, ready, lines)
        lines[addr] = line
        index[addr] = line
        self._size = size + 1

    def _update_partial_peak(self) -> None:
        footprint = (
            len(self._sets[CLASS_PARTIAL]) + len(self._spilled_partials)
        ) * self.line_bytes
        if footprint > self.stats.partial_peak_bytes:
            self.stats.partial_peak_bytes = footprint
        self.stats.sample_partial_footprint(footprint)
