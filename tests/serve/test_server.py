"""The sweep server end to end: cold/warm submits, single-flight
dedup, live status streams, metrics, failure paths.

Real-simulation coverage uses the smallest registry workload
(``cora`` at scale 0.05); concurrency mechanics use a blockable stub
runner injected through the server's ``runner`` seam so the tests
control exactly when an "execution" finishes.
"""

import json
import threading
import time

import pytest

from repro.bench.runner import job_spec
from repro.runtime import JobSpec, ShardedResultCache, execute_spec
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import encode
from repro.serve.server import (
    ServeSettings,
    ServerThread,
    SweepServer,
    percentiles,
    phase_rows_from_record,
)


@pytest.fixture(scope="module")
def spec():
    return JobSpec(dataset="cora", kind="rwp", scale=0.05)


@pytest.fixture(scope="module")
def result(spec):
    return execute_spec(spec)


def wait_until(predicate, timeout=20.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ----------------------------------------------------------------------
# Cold / warm, byte identity
# ----------------------------------------------------------------------
class TestColdWarm:
    def test_cold_executes_then_warm_hits_cache(self, tmp_path, spec):
        cache = ShardedResultCache(tmp_path)
        with ServerThread(cache=cache) as srv:
            with ServeClient(srv.host, srv.port) as client:
                cold = client.submit(spec.to_dict(), include_result=True)
                assert cold["status"] == "done"
                assert cold["source"] == "executed"
                assert cold["cache"] == "miss"
                assert cold["phases"], "live phase progress missing"
                warm = client.submit(spec.to_dict(), include_result=True)
                assert warm["status"] == "done"
                assert warm["source"] == "cache-disk"
                assert warm["cache"] == "hit"
                # The served result is byte-identical either way.
                assert encode({"r": cold["result"]}) == encode(
                    {"r": warm["result"]}
                )
                metrics = client.metrics()
                assert metrics["jobs"]["executed"] == 1
                assert metrics["jobs"]["cache_served"] == 1
                assert metrics["hitpath_ms"]["count"] == 1
        # The record landed in the sharded layout on disk.
        fp = spec.fingerprint()
        assert (tmp_path / fp[:2] / fp[2:4] / f"{fp}.json").exists()

    def test_warm_phases_rebuilt_from_snapshots(self, tmp_path, spec):
        cache = ShardedResultCache(tmp_path)
        with ServerThread(cache=cache) as srv:
            with ServeClient(srv.host, srv.port) as client:
                cold = client.submit(spec.to_dict())
                warm = client.submit(spec.to_dict())
        cold_names = [row["phase"] for row in cold["phases"]]
        warm_names = [row["phase"] for row in warm["phases"]]
        assert warm_names == cold_names
        for c, w in zip(cold["phases"], warm["phases"]):
            assert c["cycles"] == w["cycles"]

    def test_no_wait_returns_queued_ack(self, tmp_path, spec, result):
        release = threading.Event()

        def runner(s):
            release.wait(timeout=30)
            return result.to_dict()

        with ServerThread(runner=runner) as srv:
            with ServeClient(srv.host, srv.port) as client:
                ack = client.submit(spec.to_dict(), wait=False)
                assert ack["status"] in ("queued", "running")
                job_id = ack["job_id"]
                release.set()
                assert wait_until(
                    lambda: client.status(job_id)["status"] == "done"
                )


# ----------------------------------------------------------------------
# Single-flight dedup
# ----------------------------------------------------------------------
class TestSingleFlight:
    N = 5

    def _submit_many(self, srv, specs):
        """Submit each spec from its own connection thread; returns the
        responses in submission order."""
        responses = [None] * len(specs)
        errors = []

        def worker(i, spec_dict):
            try:
                with ServeClient(srv.host, srv.port) as client:
                    responses[i] = client.submit(spec_dict, include_result=True)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i, s))
            for i, s in enumerate(specs)
        ]
        for t in threads:
            t.start()
        return threads, responses, errors

    def test_concurrent_identical_submits_execute_once(self, spec, result):
        calls = []
        release = threading.Event()

        def runner(s):
            calls.append(s.fingerprint())
            release.wait(timeout=30)
            return result.to_dict()

        with ServerThread(runner=runner) as srv:
            threads, responses, errors = self._submit_many(
                srv, [spec.to_dict()] * self.N
            )
            with ServeClient(srv.host, srv.port) as probe:
                # All N submissions in flight before the one execution
                # finishes.
                assert wait_until(
                    lambda: probe.metrics()["jobs"]["submitted"] == self.N
                )
                release.set()
                for t in threads:
                    t.join(timeout=30)
                assert not errors
                metrics = probe.metrics()
        assert len(calls) == 1, "single-flight must collapse to one execution"
        assert metrics["jobs"]["deduped"] == self.N - 1
        assert all(r is not None for r in responses)
        assert {r["status"] for r in responses} == {"done"}
        assert {r["source"] for r in responses} == {"executed"}
        assert {r["submits"] for r in responses} == {self.N}
        # Every caller got the identical answer, byte for byte.
        payloads = {encode({"r": r["result"]}) for r in responses}
        assert len(payloads) == 1

    def test_distinct_specs_are_not_collapsed(self, spec, result):
        calls = []
        release = threading.Event()

        def runner(s):
            calls.append(s.fingerprint())
            release.wait(timeout=30)
            return result.to_dict()

        other = JobSpec(dataset="cora", kind="rwp", scale=0.05, seed=1)
        with ServerThread(runner=runner) as srv:
            threads, responses, errors = self._submit_many(
                srv, [spec.to_dict(), other.to_dict()]
            )
            with ServeClient(srv.host, srv.port) as probe:
                assert wait_until(
                    lambda: probe.metrics()["jobs"]["submitted"] == 2
                )
                release.set()
                for t in threads:
                    t.join(timeout=30)
        assert not errors
        assert sorted(calls) == sorted(
            [spec.fingerprint(), other.fingerprint()]
        )
        assert {r["job_id"] for r in responses} == {
            spec.fingerprint(), other.fingerprint(),
        }

    def test_terminal_entry_stops_absorbing(self, spec, result):
        """After a job completes, a re-submit is a fresh lookup (served
        from the registry on a cache-less server), not a dedup join."""
        def runner(s):
            return result.to_dict()

        with ServerThread(runner=runner) as srv:
            with ServeClient(srv.host, srv.port) as client:
                first = client.submit(spec.to_dict())
                assert first["source"] == "executed"
                again = client.submit(spec.to_dict())
                assert again["source"] == "registry"
                assert again["cache"] == "hit"
                metrics = client.metrics()
        assert metrics["jobs"]["deduped"] == 0
        assert metrics["jobs"]["registry_hits"] == 1


# ----------------------------------------------------------------------
# Status and follow streams
# ----------------------------------------------------------------------
class TestStatus:
    def test_unknown_job_is_an_error(self):
        with ServerThread() as srv:
            with ServeClient(srv.host, srv.port) as client:
                with pytest.raises(ServeError, match="unknown job"):
                    client.status("no-such-fingerprint")

    def test_follow_streams_lifecycle_then_final(self, spec, result):
        release = threading.Event()

        def runner(s):
            release.wait(timeout=30)
            return result.to_dict()

        with ServerThread(runner=runner) as srv:
            with ServeClient(srv.host, srv.port) as client:
                ack = client.submit(spec.to_dict(), wait=False)
                events = []
                done = threading.Event()

                def follow():
                    with ServeClient(srv.host, srv.port) as follower:
                        for event in follower.follow(ack["job_id"]):
                            events.append(event)
                    done.set()

                t = threading.Thread(target=follow)
                t.start()
                release.set()
                assert done.wait(timeout=30)
                t.join(timeout=10)
        statuses = [
            e["status"] for e in events if e.get("event") == "status"
        ]
        assert statuses[0] == "queued"
        assert "done" in statuses
        assert events[-1]["final"] is True
        assert events[-1]["status"] == "done"

    def test_follow_terminal_job_replays_and_ends(self, tmp_path, spec):
        cache = ShardedResultCache(tmp_path)
        with ServerThread(cache=cache) as srv:
            with ServeClient(srv.host, srv.port) as client:
                submitted = client.submit(spec.to_dict())
                events = list(client.follow(submitted["job_id"]))
        assert events[-1]["final"] is True
        phase_events = [e for e in events if e.get("event") == "phase"]
        assert phase_events, "replay must include the phase progress"


# ----------------------------------------------------------------------
# Failures, health, metrics
# ----------------------------------------------------------------------
class TestFailureAndOps:
    def test_failing_job_reports_error(self, spec):
        def runner(s):
            raise RuntimeError("synthetic worker failure")

        with ServerThread(
            runner=runner, settings=ServeSettings(retries=0)
        ) as srv:
            with ServeClient(srv.host, srv.port) as client:
                response = client.submit(spec.to_dict())
                assert response["status"] == "failed"
                assert "synthetic worker failure" in response["error"]
                metrics = client.metrics()
        assert metrics["jobs"]["failed"] == 1

    def test_healthz(self):
        with ServerThread() as srv:
            with ServeClient(srv.host, srv.port) as client:
                health = client.healthz()
        assert health["status"] == "ok"
        assert health["protocol"] == 1
        assert health["queue_depth"] == 0

    def test_metrics_shape(self, tmp_path, spec):
        cache = ShardedResultCache(tmp_path)
        with ServerThread(cache=cache) as srv:
            with ServeClient(srv.host, srv.port) as client:
                client.submit(spec.to_dict())
                client.submit(spec.to_dict())
                metrics = client.metrics()
        assert metrics["jobs"]["submitted"] == 2
        assert metrics["cache"]["hit_rate"] > 0
        assert metrics["workers"]["pool_jobs"] == 1
        assert "p50" in metrics["hitpath_ms"]
        assert metrics["workers"]["peak_rss_kb"] is not None

    def test_bad_request_line_answered_not_fatal(self, tmp_path, spec):
        cache = ShardedResultCache(tmp_path)
        with ServerThread(cache=cache) as srv:
            with ServeClient(srv.host, srv.port) as client:
                client._sock.sendall(b"this is not json\n")
                error = json.loads(client._rfile.readline())
                assert error["ok"] is False
                # The connection survives and still serves.
                assert client.healthz()["status"] == "ok"

    def test_malformed_spec_is_client_error(self):
        with ServerThread() as srv:
            with ServeClient(srv.host, srv.port) as client:
                with pytest.raises(ServeError, match="bad spec"):
                    client.submit({"dataset": "cora", "kind": "no-such-kind"})

    def test_shutdown_op_stops_server(self):
        srv = ServerThread().start()
        with ServeClient(srv.host, srv.port) as client:
            assert client.shutdown()["stopping"] is True
        srv._thread.join(timeout=10)
        assert not srv._thread.is_alive()


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
class TestHelpers:
    def test_percentiles_empty(self):
        assert percentiles([]) == {}

    def test_percentiles_ranked(self):
        stats = percentiles([float(i) for i in range(1, 101)])
        assert stats["p50"] == 50.0
        assert stats["p90"] == 90.0
        assert stats["p99"] == 99.0
        assert stats["max"] == 100.0

    def test_phase_rows_from_record_sums_dict_counters(self, result):
        rows = phase_rows_from_record(result.to_dict())
        assert rows
        total = sum(row["cycles"] for row in rows)
        assert total == result.stats.cycles
        assert rows[-1]["end_cycle"] == float(total)
        for row in rows:
            assert isinstance(row["dram_read_bytes"], int)

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            ServeSettings(workers=0)
        with pytest.raises(ValueError):
            ServeSettings(max_batch=0)

    def test_server_rejects_unroutable_gracefully(self):
        server = SweepServer()
        assert server.metrics.submitted == 0
