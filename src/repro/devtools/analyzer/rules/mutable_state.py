"""Rule ``mutable-state``: no shared mutable defaults.

Objects that cross the process-pool boundary (job specs, results,
manifests) and long-lived simulator classes must not share mutable
state through defaults:

* a **mutable default argument** (``def f(x=[])``) is one object shared
  by every call -- state leaks between jobs executed in the same
  worker;
* a **dataclass field defaulted to a shared object**
  (``field(default=SOMETHING_MUTABLE)`` or a bare mutable-call default
  like ``x: dict = {}``) aliases that object across every instance;
  dataclasses reject literal list/dict/set defaults at class-creation
  time, but ``field(default=...)`` and arbitrary constructor calls
  slip through;
* a **mutable class attribute** (``class C: cache = {}``) on a
  dataclass is shared by all instances and survives ``replace()`` /
  ``from_dict`` round-trips.

Use ``field(default_factory=...)`` (dataclasses) or ``None``-plus-
construct-in-body (functions) instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.analyzer import astutil
from repro.devtools.analyzer.core import Finding, Project, Rule, register

#: Constructor names whose no-arg call builds a fresh mutable container
#: -- still shared when used as a default.
MUTABLE_CALLS = {
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
}


def _mutable_default(node: ast.AST) -> Optional[str]:
    """A short description if ``node`` is a mutable default, else None."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return "literal " + type(node).__name__.lower().replace("comp", " comprehension")
    if isinstance(node, ast.Call):
        name = astutil.dotted_name(node.func)
        if name is not None and name.split(".")[-1] in MUTABLE_CALLS:
            return f"call to {name}()"
    return None


@register
class MutableStateRule(Rule):
    name = "mutable-state"
    description = (
        "no mutable default arguments, shared dataclass field defaults, "
        "or mutable class attributes"
    )
    default_severity = "error"
    default_options = {}

    def run(self, project: Project) -> Iterator[Finding]:
        for mod in project.modules:
            for node in ast.walk(mod.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_defaults(project, mod, node)
                elif isinstance(node, ast.ClassDef) and astutil.is_dataclass_def(
                    node
                ):
                    yield from self._check_dataclass(project, mod, node)

    # ------------------------------------------------------------------
    def _check_defaults(self, project, mod, fn) -> Iterator[Finding]:
        args = fn.args
        defaults = list(zip(args.posonlyargs + args.args, _right_align(args)))
        defaults += [
            (a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
        ]
        for arg, default in defaults:
            if default is None:
                continue
            reason = _mutable_default(default)
            if reason is not None:
                yield self.finding(
                    project, mod, default,
                    f"mutable default for parameter {arg.arg!r} of "
                    f"{fn.name}() ({reason}): one shared object across "
                    f"calls; default to None and construct in the body",
                    symbol=f"{fn.name}.{arg.arg}:mutable-default",
                )

    def _check_dataclass(self, project, mod, cls: ast.ClassDef) -> Iterator[Finding]:
        for stmt in cls.body:
            # Shared class attribute: plain assignment of a mutable value.
            if isinstance(stmt, ast.Assign):
                reason = _mutable_default(stmt.value)
                if reason is not None:
                    names = ", ".join(
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    )
                    yield self.finding(
                        project, mod, stmt,
                        f"mutable class attribute {names!r} on dataclass "
                        f"{cls.name} ({reason}): shared by every instance "
                        f"and every pool worker; use field(default_factory=...)",
                        symbol=f"{cls.name}.{names}:class-attr",
                    )
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value = stmt.value
                target = (
                    stmt.target.id if isinstance(stmt.target, ast.Name) else "?"
                )
                # field(default=<mutable>) slips past dataclass's own check.
                if isinstance(value, ast.Call) and astutil.dotted_name(
                    value.func
                ) in ("field", "dataclasses.field"):
                    for kw in value.keywords:
                        if kw.arg != "default":
                            continue
                        reason = _mutable_default(kw.value)
                        if reason is not None:
                            yield self.finding(
                                project, mod, kw.value,
                                f"dataclass field {cls.name}.{target} uses "
                                f"field(default=...) with a mutable value "
                                f"({reason}); use default_factory instead",
                                symbol=f"{cls.name}.{target}:field-default",
                            )
                else:
                    reason = _mutable_default(value)
                    if reason is not None:
                        yield self.finding(
                            project, mod, value,
                            f"dataclass field {cls.name}.{target} defaults "
                            f"to a shared mutable object ({reason}); use "
                            f"field(default_factory=...)",
                            symbol=f"{cls.name}.{target}:field-default",
                        )


def _right_align(args: ast.arguments):
    """Defaults aligned to posonly+positional args (ast stores them
    right-aligned; missing slots become None)."""
    positional = args.posonlyargs + args.args
    pad = [None] * (len(positional) - len(args.defaults))
    return pad + list(args.defaults)
