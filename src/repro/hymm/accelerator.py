"""The HyMM accelerator: degree sorting + region tiling + hybrid dataflow."""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.gcn.model import GCNModel
from repro.graphs.partition import plan_regions
from repro.graphs.preprocess import degree_sort
from repro.hymm.base import AcceleratorBase
from repro.hymm.kernels import KernelContext, aggregation_hybrid
from repro.sparse import coo_to_csr


class HyMMAccelerator(AcceleratorBase):
    """The paper's accelerator (Sections III-IV).

    Preprocessing: the graph is degree-sorted (the only preprocessing
    HyMM needs, Table I) and the normalised adjacency is tiled into
    regions per Section IV-E.  Aggregation runs the hybrid schedule --
    outer product with the near-memory accumulator over the high-degree
    region-1 tiles, then row-wise product over the rest.  Combination is
    row-wise product, as in Table I.

    ``sort_mode`` ablates the preprocessing: ``"degree"`` (the paper),
    ``"random"`` (a random relabelling -- tiling without the degree
    signal), or ``"none"`` (original order).  Results are mapped back
    to original node order either way, so outputs compare directly
    against baselines and the NumPy oracle.

    ``sort_seed`` seeds the ``"random"`` relabelling.  It flows in from
    the caller (``JobSpec.seed`` through the runtime's
    ``make_accelerator``) so the permutation is part of the job's
    fingerprinted identity -- a hard-coded seed here would make jobs
    that differ only in ``seed`` simulate identically, silently.
    """

    name = "hymm"

    SORT_MODES = ("degree", "random", "none")

    def __init__(
        self,
        config: Optional[HyMMConfig] = None,
        sort_mode: str = "degree",
        sort_seed: int = 0,
    ) -> None:
        super().__init__(config)
        if sort_mode not in self.SORT_MODES:
            raise ValueError(
                f"sort_mode must be one of {self.SORT_MODES}, got {sort_mode!r}"
            )
        self.sort_mode = sort_mode
        self.sort_seed = int(sort_seed)
        if sort_mode != "degree":
            self.name = f"hymm-{sort_mode}sort" if sort_mode == "random" else "hymm-nosort"

    def _permutation(self, dataset: Any) -> Tuple[np.ndarray, float]:
        """(permutation, sorting cost in ms) per the configured mode."""
        if self.sort_mode == "degree":
            sort = degree_sort(dataset.adjacency)
            return sort.permutation, sort.elapsed_ms
        n = dataset.n_nodes
        if self.sort_mode == "random":
            rng = np.random.default_rng(self.sort_seed)
            return rng.permutation(n), 0.0
        return np.arange(n), 0.0

    def prepare(self, model: GCNModel) -> Dict[str, Any]:
        cfg = self.config
        dataset = model.dataset
        perm, sort_ms = self._permutation(dataset)
        sorted_norm = model.norm_adj.permute(row_perm=perm, col_perm=perm)
        plan = plan_regions(
            sorted_norm,
            hidden_dim=dataset.hidden_dim,
            dmb_bytes=cfg.dmb_bytes,
            threshold_fraction=cfg.threshold_fraction,
            resident_fraction=cfg.resident_fraction,
        )
        n = sorted_norm.shape[0]
        low_rows = sorted_norm.submatrix(plan.threshold, n, 0, n)
        features_sorted = coo_to_csr(
            dataset.features.to_coo().permute(row_perm=perm)
        )

        def unpermute(matrix: np.ndarray) -> np.ndarray:
            # Row `perm[old]` of the sorted result belongs to node `old`.
            return matrix[perm]

        return {
            "features": features_sorted,
            "sort_ms": sort_ms,
            "unpermute": unpermute,
            "plan": plan,
            "low_rows_csr": coo_to_csr(low_rows),
            "permutation": perm,
        }

    def run_aggregation(
        self, ctx: KernelContext, prep: Dict[str, Any], xw: np.ndarray
    ) -> np.ndarray:
        tracer = ctx.engine.tracer
        if tracer.enabled:
            plan = prep["plan"]
            tracer.instant(
                "hybrid.plan", ctx.engine.drain(), "region",
                {
                    "threshold": int(plan.threshold),
                    "region2_tiles": int(plan.n_region2_tiles),
                    "rwp_rows": int(prep["low_rows_csr"].shape[0]),
                },
            )
        return aggregation_hybrid(ctx, prep["plan"], prep["low_rows_csr"], xw)
