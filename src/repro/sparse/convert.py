"""Conversions between the sparse formats.

All conversions round-trip exactly (the property-based tests in
``tests/sparse/test_convert.py`` assert this): COO is the canonical hub
format and every path goes through it.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix


def coo_to_csr(coo: COOMatrix) -> CSRMatrix:
    """Compress COO triplets into CSR."""
    return CSRMatrix.from_coo(coo)


def coo_to_csc(coo: COOMatrix) -> CSCMatrix:
    """Compress COO triplets into CSC."""
    return CSCMatrix.from_coo(coo)


def csr_to_coo(csr: CSRMatrix) -> COOMatrix:
    """Expand CSR into canonical COO."""
    return csr.to_coo()


def csc_to_coo(csc: CSCMatrix) -> COOMatrix:
    """Expand CSC into canonical COO."""
    return csc.to_coo()


def csr_to_csc(csr: CSRMatrix) -> CSCMatrix:
    """Re-compress a CSR matrix in column-major order."""
    return CSCMatrix.from_coo(csr.to_coo())


def csc_to_csr(csc: CSCMatrix) -> CSRMatrix:
    """Re-compress a CSC matrix in row-major order."""
    return CSRMatrix.from_coo(csc.to_coo())


def dense_to_coo(dense: np.ndarray) -> COOMatrix:
    """Extract the non-zero triplets of a dense array."""
    return COOMatrix.from_dense(dense)


def dense_to_csr(dense: np.ndarray) -> CSRMatrix:
    """Compress a dense array straight to CSR."""
    return CSRMatrix.from_coo(COOMatrix.from_dense(dense))


def dense_to_csc(dense: np.ndarray) -> CSCMatrix:
    """Compress a dense array straight to CSC."""
    return CSCMatrix.from_coo(COOMatrix.from_dense(dense))
