"""Wall-clock spans: recorder output, schema validity, correlation
stamping, and the no-recorder no-op contract."""

import pytest

from repro.obs.schema import validate_trace
from repro.telemetry.logs import bind_correlation
from repro.telemetry.spans import (
    HOST_CATEGORY,
    SpanRecorder,
    active_recorder,
    install_recorder,
    instant,
    span,
)


@pytest.fixture(autouse=True)
def no_ambient_recorder_or_correlation():
    previous = install_recorder(None)
    bind_correlation(None)
    yield
    install_recorder(previous)
    bind_correlation(None)


class TestRecorder:
    def test_span_records_complete_event(self):
        rec = SpanRecorder(pid=7)
        with rec.span("runtime.execute", job="cora/hymm"):
            pass
        doc = rec.trace_dict()
        [event] = doc["traceEvents"]
        assert event["name"] == "runtime.execute"
        assert event["cat"] == HOST_CATEGORY
        assert event["ph"] == "X"
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert event["pid"] == 7
        assert event["args"]["job"] == "cora/hymm"

    def test_instant_event(self):
        rec = SpanRecorder()
        rec.instant("serve.ready", port=1234)
        [event] = rec.trace_dict()["traceEvents"]
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert event["args"]["port"] == 1234

    def test_trace_validates_under_obs_schema(self):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        rec.instant("mark")
        assert validate_trace(rec.trace_dict(tool="test")) == []

    def test_corr_id_stamped_from_context(self):
        rec = SpanRecorder()
        bind_correlation("feedface00000042")
        with rec.span("probe"):
            pass
        rec.instant("mark")
        events = rec.trace_dict()["traceEvents"]
        assert all(
            e["args"]["corr_id"] == "feedface00000042" for e in events
        )

    def test_no_corr_id_when_unbound(self):
        rec = SpanRecorder()
        with rec.span("probe"):
            pass
        [event] = rec.trace_dict()["traceEvents"]
        assert "corr_id" not in event.get("args", {})

    def test_metadata_and_clock_declared(self):
        rec = SpanRecorder()
        doc = rec.trace_dict(tool="serve", extra=1)
        assert doc["otherData"]["clock"] == "wall"
        assert doc["otherData"]["tool"] == "serve"
        assert doc["otherData"]["extra"] == 1
        assert doc["otherData"]["epoch_s"] > 0
        assert doc["displayTimeUnit"] == "ms"

    def test_events_sorted_by_start(self):
        rec = SpanRecorder()
        with rec.span("outer"):       # closes last -> appended last
            with rec.span("inner"):
                pass
        names = [e["name"] for e in rec.trace_dict()["traceEvents"]]
        assert names == ["outer", "inner"]

    def test_write_round_trips(self, tmp_path):
        import json

        rec = SpanRecorder()
        with rec.span("x"):
            pass
        path = tmp_path / "spans.json"
        rec.write(str(path), tool="test")
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert validate_trace(doc) == []
        assert len(doc["traceEvents"]) == 1

    def test_len_counts_events(self):
        rec = SpanRecorder()
        assert len(rec) == 0
        rec.instant("a")
        assert len(rec) == 1


class TestModuleLevel:
    def test_span_is_noop_without_recorder(self):
        assert active_recorder() is None
        with span("anything", key="value"):
            pass
        instant("also nothing")

    def test_span_routes_to_installed_recorder(self):
        rec = SpanRecorder()
        install_recorder(rec)
        with span("routed"):
            pass
        instant("routed too")
        assert len(rec) == 2

    def test_install_returns_previous(self):
        first = SpanRecorder()
        second = SpanRecorder()
        assert install_recorder(first) is None
        assert install_recorder(second) is first
        assert active_recorder() is second
