"""Out-of-scope helper module for the determinism escape tests.

Loaded as ``repro.util.det_helper`` -- *outside* the determinism
scope, so its own wall-clock read produces no direct finding; it only
matters when scope code calls into it.
"""

import time


def stamp():
    return time.time()


def stamp_indirect():
    return stamp()


def pure(value):
    return value + 1
