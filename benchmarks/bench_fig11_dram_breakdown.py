"""Fig. 11: DRAM access breakdown.

Paper: by exploiting locality with the hybrid dataflow, HyMM cuts
off-chip accesses by 91% (AP) and 89% (AC) versus the conventional
(outer-product) dataflow.
"""

from repro.bench import figures


def test_fig11_dram_breakdown(benchmark, emit):
    result = benchmark.pedantic(figures.fig11_dram_breakdown, rounds=1, iterations=1)
    emit("fig11_dram_breakdown", result["text"])
    reduction = result["reduction_vs_op"]

    # HyMM reduces DRAM traffic vs OP everywhere.
    for abbr, pct in reduction.items():
        assert pct > 0, abbr
    # The dense Amazon graphs show the paper's headline-scale reduction.
    assert reduction["AP"] > 70
    assert reduction["AC"] > 70

    # HyMM's partial-output traffic is a small fraction of OP's.
    for abbr, by_kind in result["breakdown"].items():
        op_partial = by_kind["op"].get("partial", 0)
        hymm_partial = by_kind["hymm"].get("partial", 0)
        if op_partial:
            assert hymm_partial < op_partial, abbr
