"""End-to-end tests for ``python -m repro.devtools.analyzer``.

Each test builds a throwaway ``src/repro/...`` tree in tmp_path so the
CLI sees realistic module names, then drives ``cli.main`` directly and
asserts on exit codes and output.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.analyzer import cli
from repro.devtools.analyzer.baseline import PLACEHOLDER_REASON, Baseline

DIRTY_MODULE = """\
import time


def stamp():
    return time.time()
"""

CLEAN_MODULE = """\
def stamp(now: float) -> float:
    return now
"""


def make_tree(root: Path, source: str) -> Path:
    pkg = root / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (root / "src" / "repro" / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "clock.py").write_text(source, encoding="utf-8")
    return root / "src"


def run_cli(args, capsys):
    code = cli.main([str(a) for a in args])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_MODULE)
        code, out, _ = run_cli([src], capsys)
        assert code == 0
        assert "0 finding(s)" in out

    def test_error_findings_exit_one(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_MODULE)
        code, out, _ = run_cli([src], capsys)
        assert code == 1
        assert "determinism" in out
        assert "clock.py" in out

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_MODULE)
        code, _, err = run_cli([src, "--rules", "no-such-rule"], capsys)
        assert code == 2
        assert "no-such-rule" in err

    def test_syntax_error_is_reported(self, tmp_path, capsys):
        src = make_tree(tmp_path, "def broken(:\n")
        code, _, err = run_cli([src], capsys)
        assert code == 2
        assert "cannot parse" in err
        # The offending path must be named, or a tree-wide run gives
        # the user nothing to fix.
        assert "clock.py" in err

    def test_empty_scope_is_clean_success(self, tmp_path, capsys):
        empty = tmp_path / "src"
        empty.mkdir()
        code, out, _ = run_cli([empty], capsys)
        assert code == 0
        assert "0 finding(s)" in out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        code, _, err = run_cli([tmp_path / "no-such-dir"], capsys)
        assert code == 2
        assert "no such path" in err


class TestJsonFormat:
    def test_findings_are_machine_readable(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_MODULE)
        code, out, _ = run_cli([src, "--format", "json"], capsys)
        assert code == 1
        payload = json.loads(out)
        [finding] = payload["findings"]
        assert finding["rule"] == "determinism"
        assert finding["line"] == 5
        assert finding["severity"] == "error"
        assert finding["key"].startswith("determinism::")
        assert payload["baselined"] == []
        assert payload["stale_baseline_keys"] == []

    def test_clean_tree_emits_empty_list(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_MODULE)
        code, out, _ = run_cli([src, "--format", "json"], capsys)
        assert code == 0
        assert json.loads(out)["findings"] == []


class TestBaseline:
    def test_write_then_check_round_trips(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_MODULE)
        baseline = tmp_path / "baseline.json"

        code, _, _ = run_cli([src, "--write-baseline", "--baseline", baseline], capsys)
        assert code == 0
        data = json.loads(baseline.read_text(encoding="utf-8"))
        assert data["version"] == 1
        assert all(e["reason"] == PLACEHOLDER_REASON for e in data["findings"])
        assert all(e["key"].startswith("determinism::") for e in data["findings"])

        # Same tree + baseline: the known finding is suppressed.
        code, out, _ = run_cli([src, "--baseline", baseline], capsys)
        assert code == 0
        assert "baselined" in out

    def test_new_finding_still_fails(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_MODULE)
        baseline = tmp_path / "baseline.json"
        run_cli([src, "--write-baseline", "--baseline", baseline], capsys)

        # Baseline keys are line-insensitive, so a *different* hazard is
        # needed to register as new (a second time.time() shares the key).
        clock = src / "repro" / "sim" / "clock.py"
        clock.write_text(
            "from datetime import datetime\n" + DIRTY_MODULE
            + "\n\ndef stamp2():\n    return datetime.now()\n",
            encoding="utf-8",
        )
        code, out, _ = run_cli([src, "--baseline", baseline], capsys)
        assert code == 1
        assert "datetime" in out
        assert "baselined" in out  # the original finding stays suppressed

    def test_stale_entries_are_reported(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_MODULE)
        baseline = tmp_path / "baseline.json"
        run_cli([src, "--write-baseline", "--baseline", baseline], capsys)

        (src / "repro" / "sim" / "clock.py").write_text(CLEAN_MODULE, encoding="utf-8")
        code, out, _ = run_cli([src, "--baseline", baseline], capsys)
        assert code == 0
        assert "stale" in out

    def test_malformed_baseline_is_usage_error(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_MODULE)
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 1, "findings": [{"reason": "no key"}]}', encoding="utf-8")
        code, _, err = run_cli([src, "--baseline", baseline], capsys)
        assert code == 2
        assert "key" in err

    def test_baseline_reasons_survive_rewrite(self, tmp_path):
        b = Baseline(reasons={"determinism::a.py::x": "vetted 2026-08"})
        path = tmp_path / "b.json"
        b.dump(path)
        assert Baseline.load(path).reasons == b.reasons


class TestInlineSuppression:
    def test_allow_comment_silences_finding(self, tmp_path, capsys):
        src = make_tree(
            tmp_path,
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # analyzer: allow[determinism] -- test\n",
        )
        code, out, _ = run_cli([src], capsys)
        assert code == 0
        assert "0 finding(s)" in out


class TestInlineSuppressionStaleness:
    def test_unused_allow_comment_is_warned(self, tmp_path, capsys):
        src = make_tree(
            tmp_path,
            "def stamp(now: float) -> float:\n"
            "    return now  # analyzer: allow[determinism] -- obsolete\n",
        )
        code, out, _ = run_cli([src], capsys)
        assert code == 0  # warning severity: reported, not failing
        assert "stale-suppression" in out
        assert "allow[determinism]" in out

    def test_stale_warning_fails_strict(self, tmp_path, capsys):
        src = make_tree(
            tmp_path,
            "def stamp(now: float) -> float:\n"
            "    return now  # analyzer: allow\n",
        )
        code, out, _ = run_cli([src, "--strict"], capsys)
        assert code == 1
        assert "stale-suppression" in out

    def test_partial_rule_run_does_not_report_stale(self, tmp_path, capsys):
        # With --rules, unexecuted rules' suppressions would all look
        # unused; staleness reporting must stay off.
        src = make_tree(
            tmp_path,
            "def stamp(now: float) -> float:\n"
            "    return now  # analyzer: allow[wire-schema]\n",
        )
        code, out, _ = run_cli([src, "--rules", "determinism"], capsys)
        assert code == 0
        assert "stale-suppression" not in out

    def test_docstring_mention_is_not_a_suppression(self, tmp_path, capsys):
        # Only COMMENT tokens count: prose describing the syntax must
        # neither suppress nor be reported stale.
        src = make_tree(
            tmp_path,
            '"""Docs: write `# analyzer: allow[determinism]` inline."""\n'
            "import time\n\n\ndef stamp():\n    return time.time()\n",
        )
        code, out, _ = run_cli([src], capsys)
        assert code == 1  # the finding on time.time() is NOT suppressed
        assert "determinism" in out
        assert "stale-suppression" not in out

    def test_used_allow_comment_is_not_stale(self, tmp_path, capsys):
        src = make_tree(
            tmp_path,
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # analyzer: allow[determinism]\n",
        )
        code, out, _ = run_cli([src], capsys)
        assert code == 0
        assert "stale-suppression" not in out


class TestGithubFormat:
    def test_error_annotation_shape(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_MODULE)
        code, out, _ = run_cli([src, "--format", "github"], capsys)
        assert code == 1
        [annotation] = [l for l in out.splitlines() if l.startswith("::")]
        assert annotation.startswith("::error file=")
        assert "clock.py" in annotation
        assert ",line=5," in annotation
        assert "title=analyzer determinism" in annotation

    def test_message_newlines_are_escaped(self):
        assert cli._escape_github("a\nb%c") == "a%0Ab%25c"

    def test_clean_tree_emits_no_annotations(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_MODULE)
        code, out, _ = run_cli([src, "--format", "github"], capsys)
        assert code == 0
        assert "::error" not in out
        assert "::warning" not in out


class TestTimeBudget:
    def test_generous_budget_passes(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_MODULE)
        code, _, err = run_cli([src, "--time-budget", "60"], capsys)
        assert code == 0
        assert "time-budget" not in err

    def test_exceeded_budget_fails(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_MODULE)
        code, _, err = run_cli([src, "--time-budget", "0"], capsys)
        assert code == 1
        assert "over the --time-budget" in err


class TestListRules:
    def test_output_locked_to_registry(self, capsys):
        from repro.devtools.analyzer.core import REGISTRY

        code, out, _ = run_cli(["--list-rules"], capsys)
        assert code == 0
        lines = [l for l in out.splitlines() if l.strip()]
        assert len(lines) == len(REGISTRY)
        for name, rule_cls in REGISTRY.items():
            [line] = [l for l in lines if l.startswith(name)]
            assert rule_cls.default_severity in line

    def test_interprocedural_rules_registered(self, capsys):
        code, out, _ = run_cli(["--list-rules"], capsys)
        assert code == 0
        for name in (
            "await-atomicity",
            "loop-affinity",
            "transitive-blocking",
            "determinism",
            "wire-schema",
            "stats-conservation",
            "config-hygiene",
            "mutable-state",
            "serve-hygiene",
            "obs-hygiene",
        ):
            assert name in out
