"""Core model of the contract checker: modules, findings, rules.

The analyzer is a whole-project pass, not a per-file linter: most of
the contracts it enforces (wire-schema completeness, stats
conservation, config hygiene) relate a declaration in one module to
uses in others.  So the unit of analysis is a :class:`Project` -- every
parsed module, addressable by dotted module name -- and a
:class:`Rule` receives the whole project and yields
:class:`Finding`\\ s.

Suppression has two layers:

* an inline comment ``# analyzer: allow[rule-name]`` (or a bare
  ``# analyzer: allow`` for every rule) silences findings on that line
  at parse time -- for violations that are *by design*, justified in
  the adjacent code;
* a baseline file (see :mod:`repro.devtools.analyzer.baseline`)
  silences known findings by stable key -- for debt that is tracked
  but not yet paid off.
"""

from __future__ import annotations

import ast
import io
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Type

#: Severity levels, in increasing order of badness.
SEVERITIES = ("warning", "error")

_ALLOW_RE = re.compile(r"#\s*analyzer:\s*allow(?:\[([^\]]*)\])?")


@dataclass(frozen=True)
class Finding:
    """One contract violation at one location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    #: Stable symbol the finding is about (class/field/function name);
    #: part of the baseline key so findings survive line drift.
    symbol: str = ""

    def key(self) -> str:
        """Line-insensitive identity used by the baseline file."""
        return f"{self.rule}::{self.path}::{self.symbol or self.message}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} [{self.rule}] {self.message}"
        )


@dataclass
class SourceModule:
    """One parsed source file."""

    path: Path
    #: Dotted module name ("repro.sim.stats"); rules scope by prefix.
    module: str
    tree: ast.Module
    source: str
    #: line number -> set of rule names allowed there ("*" = all).
    allowed: Dict[int, frozenset] = field(default_factory=dict)

    def is_allowed(self, rule: str, line: int) -> bool:
        allowed = self.allowed.get(line)
        if allowed is None:
            return False
        return "*" in allowed or rule in allowed

    @classmethod
    def parse(cls, path: Path, module: str) -> "SourceModule":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        allowed: Dict[int, frozenset] = {}
        # Only genuine COMMENT tokens count: a docstring that *mentions*
        # the `# analyzer: allow[...]` syntax must neither suppress nor
        # be reported as a stale suppression.
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            tokens = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(tok.string)
            if match is None:
                continue
            lineno = tok.start[0]
            names = match.group(1)
            if names is None:
                allowed[lineno] = frozenset({"*"})
            else:
                allowed[lineno] = frozenset(
                    n.strip() for n in names.split(",") if n.strip()
                )
        return cls(path=path, module=module, tree=tree, source=source, allowed=allowed)


def module_name_for(path: Path) -> str:
    """Dotted module name from a file path.

    Everything after a ``src`` (or ``site-packages``) component is the
    package path; without one, the path relative to the current
    directory is used.  ``__init__.py`` names the package itself.
    """
    parts = list(path.parts)
    for anchor in ("src", "site-packages"):
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1 :]
            break
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p) or path.stem


@dataclass
class Project:
    """Every module under analysis, plus path bookkeeping for display."""

    modules: List[SourceModule] = field(default_factory=list)
    #: Paths that failed to parse: (path, error message).
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    #: Base directory findings' paths are made relative to.
    root: Optional[Path] = None

    def by_module(self, name: str) -> Optional[SourceModule]:
        for mod in self.modules:
            if mod.module == name:
                return mod
        return None

    def in_package(self, *prefixes: str) -> Iterator[SourceModule]:
        """Modules whose dotted name is, or is inside, any prefix."""
        for mod in self.modules:
            if any(
                mod.module == p or mod.module.startswith(p + ".") for p in prefixes
            ):
                yield mod

    def display_path(self, path: Path) -> str:
        if self.root is not None:
            try:
                return str(path.relative_to(self.root))
            except ValueError:
                pass
        return str(path)

    @classmethod
    def load(
        cls,
        paths: Sequence[Path],
        root: Optional[Path] = None,
        module_names: Optional[Mapping[Path, str]] = None,
    ) -> "Project":
        """Parse ``paths`` (files or directories, recursively).

        ``module_names`` overrides the derived dotted name per file --
        the test suite uses this to place fixture files inside
        pretend packages.
        """
        project = cls(root=root if root is not None else Path.cwd())
        seen = set()
        for path in paths:
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for file in files:
                resolved = file.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                name = (
                    module_names.get(file)
                    if module_names is not None and file in module_names
                    else module_name_for(file)
                )
                assert name is not None
                try:
                    project.modules.append(SourceModule.parse(file, name))
                except (SyntaxError, UnicodeDecodeError) as exc:
                    project.parse_errors.append((str(file), str(exc)))
        return project


class Rule:
    """Base class for one contract check.

    Subclasses set :attr:`name` / :attr:`description` /
    :attr:`default_severity` and implement :meth:`run`.  ``options``
    carries per-rule configuration (scope packages, root classes, ...)
    merged from the rule's :attr:`default_options` and any
    ``[tool.repro-analyzer.rules.<name>]`` table in ``pyproject.toml``.
    """

    name: str = ""
    description: str = ""
    default_severity: str = "error"
    default_options: Dict[str, Any] = {}

    def __init__(
        self,
        severity: Optional[str] = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.severity = severity if severity is not None else self.default_severity
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        merged: Dict[str, Any] = dict(self.default_options)
        if options:
            merged.update(options)
        self.options = merged

    def run(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    # Convenience for subclasses -------------------------------------
    def finding(
        self,
        project: Project,
        mod: SourceModule,
        node: ast.AST,
        message: str,
        symbol: str = "",
    ) -> Finding:
        return Finding(
            rule=self.name,
            severity=self.severity,
            path=project.display_path(mod.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            symbol=symbol,
        )


#: name -> rule class, in registration order.
REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.name:
        raise ValueError(f"{rule_cls.__name__} has no name")
    if rule_cls.name in REGISTRY:
        raise ValueError(f"duplicate rule name {rule_cls.name!r}")
    REGISTRY[rule_cls.name] = rule_cls
    return rule_cls


def load_pyproject_config(start: Path) -> Dict[str, Any]:
    """The ``[tool.repro-analyzer]`` table from the nearest
    ``pyproject.toml`` at or above ``start`` (empty when absent or when
    ``tomllib`` is unavailable, i.e. Python < 3.11)."""
    if sys.version_info < (3, 11):  # pragma: no cover - version gate
        return {}
    import tomllib

    directory = start if start.is_dir() else start.parent
    for candidate in [directory, *directory.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            try:
                with open(pyproject, "rb") as fh:
                    data = tomllib.load(fh)
            except (OSError, tomllib.TOMLDecodeError):
                return {}
            tool = data.get("tool", {})
            section = tool.get("repro-analyzer", {})
            return dict(section) if isinstance(section, dict) else {}
    return {}


def make_rules(
    config: Optional[Mapping[str, Any]] = None,
    only: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Instantiate registered rules with per-rule config applied.

    ``config`` follows the ``[tool.repro-analyzer]`` layout::

        {"rules": {"determinism": {"severity": "warning",
                                   "enabled": True,
                                   "scope": ["repro.sim", ...]}}}
    """
    rule_tables: Mapping[str, Any] = (config or {}).get("rules", {})
    names = list(only) if only is not None else list(REGISTRY)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    rules: List[Rule] = []
    for name in names:
        table = rule_tables.get(name, {})
        if not isinstance(table, Mapping):
            table = {}
        if only is None and not table.get("enabled", True):
            continue
        options = {
            k: v for k, v in table.items() if k not in ("severity", "enabled")
        }
        rules.append(REGISTRY[name](severity=table.get("severity"), options=options))
    return rules


#: Pseudo-rule name for stale-inline-suppression warnings.
STALE_SUPPRESSION = "stale-suppression"


def run_rules(
    project: Project,
    rules: Sequence[Rule],
    report_stale_suppressions: bool = False,
) -> List[Finding]:
    """Run every rule; inline-suppressed findings are dropped here.

    With ``report_stale_suppressions``, an ``# analyzer: allow[...]``
    comment that suppressed nothing in this run becomes a warning
    finding (rule :data:`STALE_SUPPRESSION`) -- baseline entries
    already report their staleness, and inline comments rot the same
    way.  Off by default: a partial run (``--rules determinism``, a
    narrowed scope) makes every other suppression look unused.
    """
    findings: List[Finding] = []
    path_to_mod = {project.display_path(m.path): m for m in project.modules}
    used: Dict[Tuple[str, int], bool] = {}
    for rule in rules:
        for finding in rule.run(project):
            mod = path_to_mod.get(finding.path)
            if mod is not None and mod.is_allowed(finding.rule, finding.line):
                used[(finding.path, finding.line)] = True
                continue
            findings.append(finding)
    if report_stale_suppressions:
        rule_names = {rule.name for rule in rules}
        for mod in project.modules:
            path = project.display_path(mod.path)
            for line, allowed in sorted(mod.allowed.items()):
                if used.get((path, line)):
                    continue
                names = sorted(allowed)
                # A suppression naming only rules outside this run may
                # be live for a rule that didn't execute: not stale.
                if "*" not in allowed and not (allowed & rule_names):
                    continue
                findings.append(
                    Finding(
                        rule=STALE_SUPPRESSION,
                        severity="warning",
                        path=path,
                        line=line,
                        col=1,
                        message=(
                            "stale suppression `# analyzer: "
                            f"allow[{', '.join(names)}]`: no finding on "
                            "this line needed it; delete the comment"
                        ),
                        symbol=f"line:{line}",
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
