"""Record/replay of resolved per-phase timing traces.

The second lane of the epoch-vectorization PR (see
``docs/performance.md``): a live simulation resolves every address
through the buffer model once and *records*, per accelerator phase, the
phase's full outcome -- the :class:`~repro.sim.stats.SimStats` delta,
the output matrix, the end-of-phase occupancy, and the complete
post-phase simulator state (buffer arena, engine timelines, DRAM
channel clock).  Any later run that reaches the same phase *with the
same pre-state* replays the record instead of simulating: restore
state, merge the stats delta, hand back the output.  Ablation sweeps
that share a prefix of phases (or differ only in timing-exempt knobs
like the reporting clock) skip the buffer model entirely for the
shared phases.

Why this is exact
-----------------
The simulator is deterministic: a phase's outcome is a pure function of
(model operands, timing-relevant config, pre-phase simulator state).
Phase identity is established by a *chained signature*::

    sig_0 = H(schema || model fingerprint || accelerator || timing cfg)
    sig_k = H(sig_{k-1} || phase name)

``sig_k`` therefore commits to the entire phase history from reset.  By
induction, two runs holding the same ``sig_k`` hold bit-identical
pre-state at phase ``k`` -- same seed inputs, same phases executed --
so the recorded post-state and stats delta are exactly what the live
phase would produce.  Every float in the snapshots is a dyadic
rational (the simulator builds cycle values from ``max`` and additions
of on-grid quantities), so JSON round-trips the state exactly.

The timing config drops fields with no effect on simulated cycles
(``engine`` -- the scalar and batched engines are bit-identical by the
equivalence contract -- and ``clock_ghz``, a pure reporting scale);
accelerators extend the exemption set via
``AcceleratorBase.phase_config_exempt`` for knobs their dataflow never
reads, widening trace sharing across ablation sweeps.

Storage is a :class:`repro.runtime.cache.TraceStore` (sharded layout,
atomic writes, corrupt-record eviction); invalidation is structural --
the chain hashes :data:`TRACE_SCHEMA_VERSION`, so any layout change
simply stops hitting old records.

Replay is read-only by construction: applying a record only calls the
``restore_state`` methods and merges stats; it never touches buffer
arena internals directly (the ``buffer-internals`` analyzer rule
checks this).
"""

from __future__ import annotations

import hashlib
import json
import logging
import time
from typing import Dict, List, Optional

import numpy as np

from repro.gcn.model import GCNModel
from repro.hymm.config import HyMMConfig
from repro.telemetry import get_logger, get_registry

_log = get_logger("sim.replay")

# Record/restore wall-clock accounting (host clock, duration-only:
# ``perf_counter`` deltas never feed simulated results, matching the
# determinism rule's explicit exemption).  Registered once at module
# scope into the process-global registry.
_registry = get_registry()
_PHASES_TOTAL = _registry.counter(
    "repro_replay_phases_total",
    "Phases served by the trace store (replayed) vs simulated live and "
    "recorded",
    labelnames=("mode",),
)
_LOOKUP_MS = _registry.histogram(
    "repro_replay_lookup_ms",
    "Wall milliseconds to probe the trace store for one phase record",
)
_RECORD_MS = _registry.histogram(
    "repro_replay_record_ms",
    "Wall milliseconds to persist one phase record",
)

#: Bump on any change to the trace record layout or the snapshot wire
#: formats; hashed into the signature chain so stale records become
#: structural misses instead of wrong replays.
TRACE_SCHEMA_VERSION = 1

#: Config fields with no effect on simulated timing for *any*
#: accelerator: the engine choice (scalar/batched are bit-identical by
#: the equivalence contract) and the reporting clock.
BASE_TIMING_EXEMPT = frozenset({"engine", "clock_ghz"})

#: Keys every applicable phase record must carry.  ``lookup`` verifies
#: them *before* handing the record to the run loop, so a truncated or
#: hand-edited record (valid JSON, wrong shape) is a clean miss -- the
#: phase simulates live -- instead of a KeyError halfway through a
#: state restore.
RECORD_REQUIRED_KEYS = frozenset(
    {"stats", "occupancy", "output", "buffer", "engine", "dram_next_free"}
)


def _hash_array(h: "hashlib._Hash", arr: np.ndarray) -> None:
    a = np.ascontiguousarray(arr)
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())


def model_fingerprint(model: GCNModel) -> str:
    """Content hash of everything the simulator reads from the model:
    the normalised adjacency, the feature matrix, and per-layer weights
    plus activation presence.  Two models with equal fingerprints drive
    byte-identical simulations (given equal config)."""
    h = hashlib.sha256()
    h.update(model.dataset.name.encode())
    adj = model.norm_adj
    h.update(str(adj.shape).encode())
    _hash_array(h, adj.rows)
    _hash_array(h, adj.cols)
    _hash_array(h, adj.values)
    feats = model.dataset.features
    h.update(str(feats.shape).encode())
    _hash_array(h, feats.indptr)
    _hash_array(h, feats.indices)
    _hash_array(h, feats.values)
    for layer in model.layers:
        _hash_array(h, layer.weights)
        h.update(b"act" if layer.activation is not None else b"lin")
    return h.hexdigest()


def timing_config_dict(
    config: HyMMConfig, exempt: frozenset = BASE_TIMING_EXEMPT
) -> Dict[str, object]:
    """``config.to_dict()`` minus the timing-exempt fields."""
    return {k: v for k, v in config.to_dict().items() if k not in exempt}


class TraceSession:
    """One run's view of the trace store: signature chain + counters.

    Create one per ``run_inference`` call (the chain is stateful), give
    it the store, then let the run loop drive it::

        session = TraceSession(store)
        session.open(accelerator.name, config, model, exempt)
        sig = session.next_signature("layer0.combination")
        rec = session.lookup(sig)      # None -> simulate live + record

    ``replayed`` / ``recorded`` list the phase names served each way,
    so callers (and the correctness tests) can assert replay actually
    happened rather than silently falling back to live simulation.
    """

    def __init__(self, store) -> None:
        from repro.telemetry import current_correlation_id

        self.store = store
        self._sig: Optional[str] = None
        self.replayed: List[str] = []
        self.recorded: List[str] = []
        #: Correlation ID of the request this session serves (bound in
        #: the worker before the session is created); joins the
        #: session's log records to the submit that caused them.
        self.corr_id: Optional[str] = current_correlation_id()

    # ------------------------------------------------------------------
    def open(
        self,
        accelerator: str,
        config: HyMMConfig,
        model: GCNModel,
        exempt: frozenset = BASE_TIMING_EXEMPT,
    ) -> str:
        """Seed the signature chain for one inference run."""
        seed = hashlib.sha256()
        seed.update(str(TRACE_SCHEMA_VERSION).encode())
        seed.update(accelerator.encode())
        seed.update(model_fingerprint(model).encode())
        seed.update(
            json.dumps(timing_config_dict(config, exempt), sort_keys=True).encode()
        )
        self._sig = seed.hexdigest()
        return self._sig

    def next_signature(self, phase: str) -> str:
        """Advance the chain to ``phase`` and return its signature."""
        if self._sig is None:
            raise RuntimeError("TraceSession.open() must run before phases")
        h = hashlib.sha256()
        h.update(self._sig.encode())
        h.update(b"|")
        h.update(phase.encode())
        self._sig = h.hexdigest()
        return self._sig

    # ------------------------------------------------------------------
    def lookup(self, sig: str, phase: str) -> Optional[Dict[str, object]]:
        """The stored record for ``sig`` if its schema matches and its
        shape is complete, else ``None`` (simulate live).  A hit is
        tallied in ``replayed``.

        Stale (older schema) and structurally incomplete records are
        misses by design -- replay must fall back to live simulation on
        anything it cannot apply whole, since a partial restore would
        corrupt the simulator state the chained signature vouches for.
        """
        t0 = time.perf_counter()
        record = self.store.load_trace(sig)
        _LOOKUP_MS.observe((time.perf_counter() - t0) * 1e3)
        if record is None:
            miss = "absent"
        elif record.get("trace_schema") != TRACE_SCHEMA_VERSION:
            miss = "stale-schema"
        elif not RECORD_REQUIRED_KEYS.issubset(record):
            miss = "incomplete"
        else:
            _PHASES_TOTAL.labels("replayed").inc()
            self.replayed.append(phase)
            return record
        if _log.isEnabledFor(logging.DEBUG):
            _log.debug(
                "trace miss",
                extra={"corr_id": self.corr_id, "phase": phase, "why": miss},
            )
        return None

    def record(self, sig: str, phase: str, record: Dict[str, object]) -> None:
        """Persist one phase record under ``sig``."""
        record = dict(record)
        record["trace_schema"] = TRACE_SCHEMA_VERSION
        record["sig"] = sig
        record["phase"] = phase
        t0 = time.perf_counter()
        self.store.store_trace(sig, record)
        _RECORD_MS.observe((time.perf_counter() - t0) * 1e3)
        _PHASES_TOTAL.labels("recorded").inc()
        self.recorded.append(phase)
