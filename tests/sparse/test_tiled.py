"""Region-tiled storage: losslessness, region shapes, storage accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.preprocess import degree_sort
from repro.graphs.synthetic import power_law_graph
from repro.sparse import COOMatrix, RegionTiledMatrix, coo_to_csr
from repro.sparse.tiled import (
    REGION_OP,
    REGION_RWP_DENSE_COLS,
    REGION_RWP_SPARSE,
    StorageReport,
    _bands,
)


@pytest.fixture
def sorted_graph(small_graph):
    return degree_sort(small_graph).matrix


class TestBuild:
    def test_nnz_conserved(self, sorted_graph):
        tiled = RegionTiledMatrix.build(sorted_graph, threshold=12)
        assert tiled.nnz == sorted_graph.nnz

    def test_lossless_reassembly(self, sorted_graph):
        tiled = RegionTiledMatrix.build(sorted_graph, threshold=12)
        assert tiled.to_coo().allclose(sorted_graph)

    def test_three_regions_present(self, sorted_graph):
        tiled = RegionTiledMatrix.build(sorted_graph, threshold=12)
        assert len(tiled.tiles_in_region(REGION_OP)) == 1
        assert len(tiled.tiles_in_region(REGION_RWP_DENSE_COLS)) == 1
        assert len(tiled.tiles_in_region(REGION_RWP_SPARSE)) == 1

    def test_region1_is_csc(self, sorted_graph):
        tile = RegionTiledMatrix.build(sorted_graph, threshold=12).tiles_in_region(1)[0]
        assert tile.fmt == "csc"
        assert (tile.row_lo, tile.row_hi) == (0, 12)
        assert (tile.col_lo, tile.col_hi) == (0, 64)

    def test_region2_is_csr_on_top_columns(self, sorted_graph):
        tile = RegionTiledMatrix.build(sorted_graph, threshold=12).tiles_in_region(2)[0]
        assert tile.fmt == "csr"
        assert (tile.row_lo, tile.row_hi) == (12, 64)
        assert (tile.col_lo, tile.col_hi) == (0, 12)

    def test_region3_residual_block(self, sorted_graph):
        tile = RegionTiledMatrix.build(sorted_graph, threshold=12).tiles_in_region(3)[0]
        assert (tile.row_lo, tile.col_lo) == (12, 12)

    def test_zero_threshold_puts_all_in_rwp(self, sorted_graph):
        tiled = RegionTiledMatrix.build(sorted_graph, threshold=0)
        assert not tiled.tiles_in_region(REGION_OP)
        assert not tiled.tiles_in_region(REGION_RWP_DENSE_COLS)
        assert tiled.to_coo().allclose(sorted_graph)

    def test_full_threshold_puts_all_in_op(self, sorted_graph):
        n = sorted_graph.shape[0]
        tiled = RegionTiledMatrix.build(sorted_graph, threshold=n)
        assert len(tiled.tiles_in_region(REGION_OP)) == 1
        assert not tiled.tiles_in_region(REGION_RWP_SPARSE)
        assert tiled.to_coo().allclose(sorted_graph)

    def test_row_banding_splits_region1(self, sorted_graph):
        tiled = RegionTiledMatrix.build(sorted_graph, threshold=12, row_band=5)
        r1 = tiled.tiles_in_region(REGION_OP)
        assert len(r1) == 3  # 5 + 5 + 2 rows
        assert [t.row_hi - t.row_lo for t in r1] == [5, 5, 2]
        assert tiled.to_coo().allclose(sorted_graph)

    def test_col_banding_splits_region2(self, sorted_graph):
        tiled = RegionTiledMatrix.build(sorted_graph, threshold=12, col_band=4)
        r2 = tiled.tiles_in_region(REGION_RWP_DENSE_COLS)
        assert len(r2) == 3
        assert tiled.to_coo().allclose(sorted_graph)

    def test_non_square_rejected(self):
        rect = COOMatrix.empty((4, 6))
        with pytest.raises(ValueError, match="square"):
            RegionTiledMatrix.build(rect, threshold=2)

    def test_threshold_out_of_range(self, sorted_graph):
        with pytest.raises(ValueError, match="threshold"):
            RegionTiledMatrix.build(sorted_graph, threshold=65)

    def test_region_nnz_partition(self, sorted_graph):
        """Every non-zero lands in exactly one region."""
        t = 12
        tiled = RegionTiledMatrix.build(sorted_graph, threshold=t)
        rows, cols = sorted_graph.rows, sorted_graph.cols
        n1 = int((rows < t).sum())
        n2 = int(((rows >= t) & (cols < t)).sum())
        n3 = int(((rows >= t) & (cols >= t)).sum())
        assert sum(x.nnz for x in tiled.tiles_in_region(1)) == n1
        assert sum(x.nnz for x in tiled.tiles_in_region(2)) == n2
        assert sum(x.nnz for x in tiled.tiles_in_region(3)) == n3


class TestStorage:
    def test_overhead_positive_for_banded(self, sorted_graph):
        tiled = RegionTiledMatrix.build(sorted_graph, threshold=12)
        report = tiled.storage_report()
        assert report.tiled_bytes > report.baseline_bytes
        assert report.overhead_pct > 0

    def test_overhead_grows_with_banding(self, sorted_graph):
        plain = RegionTiledMatrix.build(sorted_graph, threshold=12).storage_report()
        banded = RegionTiledMatrix.build(
            sorted_graph, threshold=12, row_band=3, col_band=3
        ).storage_report()
        assert banded.tiled_bytes > plain.tiled_bytes

    def test_explicit_baseline(self, sorted_graph):
        tiled = RegionTiledMatrix.build(sorted_graph, threshold=12)
        baseline = coo_to_csr(sorted_graph)
        report = tiled.storage_report(baseline)
        assert report.baseline_bytes == baseline.storage_bytes()

    def test_report_zero_baseline(self):
        assert StorageReport(0, 10).overhead_pct == 0.0

    def test_overhead_bytes(self):
        r = StorageReport(100, 130)
        assert r.overhead_bytes == 30
        assert r.overhead_pct == pytest.approx(30.0)

    def test_overhead_shrinks_with_graph_size(self):
        """The Fig. 6 trend: larger graphs -> smaller relative overhead."""
        small = degree_sort(power_law_graph(100, 600, seed=1)).matrix
        large = degree_sort(power_law_graph(1000, 12000, seed=1)).matrix
        small_over = RegionTiledMatrix.build(small, 20).storage_report().overhead_pct
        large_over = RegionTiledMatrix.build(large, 200).storage_report().overhead_pct
        assert large_over < small_over


class TestBands:
    def test_no_band(self):
        assert list(_bands(0, 10, None)) == [(0, 10)]

    def test_band_larger_than_range(self):
        assert list(_bands(0, 10, 100)) == [(0, 10)]

    def test_exact_division(self):
        assert list(_bands(0, 10, 5)) == [(0, 5), (5, 10)]

    def test_remainder(self):
        assert list(_bands(0, 10, 4)) == [(0, 4), (4, 8), (8, 10)]

    def test_empty_range(self):
        assert list(_bands(5, 5, 2)) == []

    def test_bad_band(self):
        with pytest.raises(ValueError):
            list(_bands(0, 10, 0))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(4, 40),
    edges=st.integers(0, 80),
    threshold_frac=st.floats(0.0, 1.0),
    band=st.integers(1, 10),
    seed=st.integers(0, 100),
)
def test_property_tiling_is_lossless(n, edges, threshold_frac, band, seed):
    graph = power_law_graph(n, min(edges - edges % 2, n * (n - 1) - 1), seed=seed)
    sorted_graph = degree_sort(graph).matrix
    threshold = int(threshold_frac * n)
    tiled = RegionTiledMatrix.build(
        sorted_graph, threshold, row_band=band, col_band=band
    )
    assert tiled.nnz == sorted_graph.nnz
    assert tiled.to_coo().allclose(sorted_graph)
