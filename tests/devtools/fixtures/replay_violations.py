"""Fixture for the ``buffer-internals`` replay scope: in replay-mode
code even *reading* an arena field is a violation -- state must flow
through the public snapshot/restore pair only."""


def apply_trace(buffer, engine, rec):
    # Legitimate replay application: public surface only.
    buffer.restore_state(rec["buffer"])
    engine.restore_state(rec["engine"])
    occupancy = buffer.occupancy_by_class()
    # Violations: an arena read and an arena write.
    watermark = buffer._max_ready
    buffer._slot_ready[0] = 0.0
    # Violation: a private-method call.
    buffer._commit_epoch("w", [], [], [], [], False)
    return occupancy, watermark


def record_trace(buf):
    # Snapshotting goes through the public API too.
    return {"buffer": buf.snapshot_state()}
