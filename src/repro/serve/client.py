"""Blocking client for the sweep service's NDJSON protocol.

Used by the ``python -m repro.serve`` CLI subcommands, the hit-path
benchmark, and the test suite.  One :class:`ServeClient` wraps one TCP
connection; requests are plain dicts (see :mod:`repro.serve.protocol`),
responses come back as decoded dicts.  The client is synchronous on
purpose -- callers are short-lived command-line tools and worker
threads, not the server's event loop.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterator, Optional

from repro.serve.protocol import MAX_LINE_BYTES, decode, encode


class ServeError(RuntimeError):
    """The server answered ``ok: false`` (carries the error payload)."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        super().__init__(str(payload.get("error", "server error")))
        self.payload = payload


class ServeClient:
    """One connection to a running sweep server."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7341,
        timeout: Optional[float] = None,
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _read_response(self) -> Dict[str, Any]:
        line = self._rfile.readline(MAX_LINE_BYTES)
        if not line:
            raise ConnectionError("server closed the connection")
        return decode(line)

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request line, read one response line.

        Raises :class:`ServeError` on ``ok: false`` responses so CLI
        and test callers never have to remember the check.
        """
        self._sock.sendall(encode(payload))
        response = self._read_response()
        if not response.get("ok", False):
            raise ServeError(response)
        return response

    def request_raw(self, payload: Dict[str, Any]) -> bytes:
        """Like :meth:`request` but returns the raw response line
        (newline included) -- the byte-identity test's probe."""
        self._sock.sendall(encode(payload))
        line = self._rfile.readline(MAX_LINE_BYTES)
        if not line:
            raise ConnectionError("server closed the connection")
        return line

    # ------------------------------------------------------------------
    # Endpoint helpers
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: Dict[str, Any],
        wait: bool = True,
        include_result: bool = False,
    ) -> Dict[str, Any]:
        return self.request(
            {
                "op": "submit",
                "spec": spec,
                "wait": wait,
                "include_result": include_result,
            }
        )

    def status(
        self, job_id: str, include_result: bool = False
    ) -> Dict[str, Any]:
        return self.request(
            {
                "op": "status",
                "job_id": job_id,
                "include_result": include_result,
            }
        )

    def follow(
        self, job_id: str, include_result: bool = False
    ) -> Iterator[Dict[str, Any]]:
        """Yield status/phase events until the terminal ``final`` line
        (which is yielded too, then the iterator ends)."""
        self._sock.sendall(
            encode(
                {
                    "op": "status",
                    "job_id": job_id,
                    "follow": True,
                    "include_result": include_result,
                }
            )
        )
        while True:
            event = self._read_response()
            if not event.get("ok", False):
                raise ServeError(event)
            yield event
            if event.get("final"):
                return

    def healthz(self) -> Dict[str, Any]:
        return self.request({"op": "healthz"})

    def metrics(self) -> Dict[str, Any]:
        return self.request({"op": "metrics"})

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition (server + process registries)."""
        response = self.request({"op": "metrics", "format": "prometheus"})
        return str(response.get("exposition", ""))

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})
