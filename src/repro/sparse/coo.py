"""Coordinate-format (COO) sparse matrix.

COO is the interchange format of this package: the synthetic graph
generators emit COO, and every compressed format (CSR/CSC, the tiled
region format) is derived from it.  Entries are canonicalised --
row-major sorted with duplicates summed -- on construction so that
format conversions and equality checks are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

INDEX_DTYPE = np.int64
VALUE_DTYPE = np.float32

#: Bytes used to store one index element in compressed streams.  The
#: accelerator uses 4-byte indices (graphs in Table II all fit in 32 bits).
INDEX_BYTES = 4
#: Bytes per stored non-zero value (single precision, Table III).
VALUE_BYTES = 4


@dataclass
class COOMatrix:
    """A sparse matrix in canonical coordinate format.

    Parameters
    ----------
    shape:
        ``(rows, cols)`` of the logical dense matrix.
    rows, cols:
        Per-nonzero row / column indices, one entry each per non-zero.
    values:
        Per-nonzero values (``float32``).

    The constructor canonicalises the triplets: entries are sorted in
    row-major order and duplicate coordinates are summed.  Explicit
    zeros are kept (an accelerator stream would still move them).
    """

    shape: tuple
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    _canonical: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        self.shape = (int(self.shape[0]), int(self.shape[1]))
        self.rows = np.asarray(self.rows, dtype=INDEX_DTYPE)
        self.cols = np.asarray(self.cols, dtype=INDEX_DTYPE)
        self.values = np.asarray(self.values, dtype=VALUE_DTYPE)
        if not (self.rows.shape == self.cols.shape == self.values.shape):
            raise ValueError(
                "rows, cols and values must have identical shapes; got "
                f"{self.rows.shape}, {self.cols.shape}, {self.values.shape}"
            )
        if self.rows.ndim != 1:
            raise ValueError("COO triplets must be one-dimensional arrays")
        self._validate_bounds()
        if not self._canonical:
            self._canonicalise()
            self._canonical = True

    def _validate_bounds(self) -> None:
        n_rows, n_cols = self.shape
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= n_rows:
                raise ValueError("row index out of bounds")
            if self.cols.min() < 0 or self.cols.max() >= n_cols:
                raise ValueError("column index out of bounds")

    def _canonicalise(self) -> None:
        """Sort row-major and merge duplicate coordinates by summing."""
        if self.rows.size == 0:
            return
        if self.rows.size > 1:
            row_step = self.rows[1:] > self.rows[:-1]
            col_step = (self.rows[1:] == self.rows[:-1]) & (
                self.cols[1:] > self.cols[:-1]
            )
            if bool(np.all(row_step | col_step)):
                # Already row-major sorted with no duplicate coordinates:
                # the O(nnz) check above is far cheaper than the lexsort.
                return
        order = np.lexsort((self.cols, self.rows))
        rows, cols, values = self.rows[order], self.cols[order], self.values[order]
        # Detect runs of identical (row, col) pairs and sum their values.
        new_run = np.empty(rows.size, dtype=bool)
        new_run[0] = True
        new_run[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        if new_run.all():
            self.rows, self.cols, self.values = rows, cols, values
            return
        run_ids = np.cumsum(new_run) - 1
        summed = np.zeros(run_ids[-1] + 1, dtype=np.float64)
        np.add.at(summed, run_ids, values.astype(np.float64))
        keep = np.flatnonzero(new_run)
        self.rows = rows[keep]
        self.cols = cols[keep]
        self.values = summed.astype(VALUE_DTYPE)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries."""
        return int(self.values.size)

    @property
    def density(self) -> float:
        """Fraction of cells that are stored (0.0 for an empty matrix)."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def storage_bytes(self) -> int:
        """Bytes needed to stream this matrix as raw (row, col, value) triplets."""
        return self.nnz * (2 * INDEX_BYTES + VALUE_BYTES)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Extract the non-zero triplets of a dense 2-D array."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("dense input must be two-dimensional")
        rows, cols = np.nonzero(dense)
        return cls(dense.shape, rows, cols, dense[rows, cols])

    @classmethod
    def empty(cls, shape) -> "COOMatrix":
        """An all-zero matrix of the given shape."""
        zero = np.zeros(0, dtype=INDEX_DTYPE)
        return cls(shape, zero, zero.copy(), np.zeros(0, dtype=VALUE_DTYPE))

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense ``float32`` array (small matrices / tests)."""
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        np.add.at(out, (self.rows, self.cols), self.values)
        return out

    # ------------------------------------------------------------------
    # Structural transforms
    # ------------------------------------------------------------------
    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (canonicalised)."""
        return COOMatrix(
            (self.shape[1], self.shape[0]),
            self.cols.copy(),
            self.rows.copy(),
            self.values.copy(),
        )

    def permute(self, row_perm: np.ndarray = None, col_perm: np.ndarray = None) -> "COOMatrix":
        """Relabel rows/columns: entry (i, j) moves to (row_perm[i], col_perm[j]).

        ``row_perm``/``col_perm`` map *old* index -> *new* index.  Either may
        be ``None`` to leave that axis untouched.  This is the primitive the
        degree-sorting preprocessing step (paper Table I, "Degree sorting")
        is built on.
        """
        rows = self.rows if row_perm is None else np.asarray(row_perm, dtype=INDEX_DTYPE)[self.rows]
        cols = self.cols if col_perm is None else np.asarray(col_perm, dtype=INDEX_DTYPE)[self.cols]
        return COOMatrix(self.shape, rows, cols, self.values.copy())

    def submatrix(self, row_lo: int, row_hi: int, col_lo: int, col_hi: int) -> "COOMatrix":
        """Extract the half-open block ``[row_lo, row_hi) x [col_lo, col_hi)``.

        Indices in the result are rebased to the block origin.  Used by the
        region partitioner to slice the degree-sorted adjacency matrix into
        the paper's regions (1), (2) and (3).
        """
        if not (0 <= row_lo <= row_hi <= self.shape[0]):
            raise ValueError(f"row range [{row_lo}, {row_hi}) out of bounds")
        if not (0 <= col_lo <= col_hi <= self.shape[1]):
            raise ValueError(f"col range [{col_lo}, {col_hi}) out of bounds")
        mask = (
            (self.rows >= row_lo)
            & (self.rows < row_hi)
            & (self.cols >= col_lo)
            & (self.cols < col_hi)
        )
        return COOMatrix(
            (row_hi - row_lo, col_hi - col_lo),
            self.rows[mask] - row_lo,
            self.cols[mask] - col_lo,
            self.values[mask],
            # A masked subset of canonical triplets stays sorted and
            # duplicate-free; rebasing shifts both axes uniformly.
            _canonical=True,
        )

    def row_degrees(self) -> np.ndarray:
        """Non-zero count of every row (length ``shape[0]``)."""
        return np.bincount(self.rows, minlength=self.shape[0]).astype(INDEX_DTYPE)

    def col_degrees(self) -> np.ndarray:
        """Non-zero count of every column (length ``shape[1]``)."""
        return np.bincount(self.cols, minlength=self.shape[1]).astype(INDEX_DTYPE)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def allclose(self, other: "COOMatrix", rtol: float = 1e-5, atol: float = 1e-6) -> bool:
        """Structural + numeric equality within floating-point tolerance."""
        if self.shape != other.shape or self.nnz != other.nnz:
            return False
        return (
            bool(np.array_equal(self.rows, other.rows))
            and bool(np.array_equal(self.cols, other.cols))
            and bool(np.allclose(self.values, other.values, rtol=rtol, atol=atol))
        )

    def __repr__(self) -> str:
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
