"""Built-in contract rules.

Importing this package registers every rule with
:data:`repro.devtools.analyzer.core.REGISTRY`.
"""

from repro.devtools.analyzer.rules import (  # noqa: F401
    await_atomicity,
    batch_api,
    buffer_internals,
    config_hygiene,
    determinism,
    loop_affinity,
    mutable_state,
    obs_hygiene,
    serve_hygiene,
    stats_conservation,
    telemetry_hygiene,
    transitive_blocking,
    wire_schema,
)
